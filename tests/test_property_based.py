"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atomic import Letter
from repro.core.domain import Domain, EndpointTransform
from repro.core.dyadic import DyadicDomain
from repro.core.boosting import BoostingPlan, median_of_means
from repro.core.join_interval import IntervalJoinEstimator
from repro.core.selfjoin import self_join_size
from repro.exact.fenwick import FenwickTree
from repro.exact.interval_join import interval_join_count
from repro.exact.rectangle_join import brute_force_join_count, plane_sweep_join_count
from repro.geometry.boxset import BoxSet
from repro.geometry.interval import Interval
from repro.geometry.relationships import classify_intervals

from tests.helpers import cover_counts, expected_estimator_value


# -- strategies -------------------------------------------------------------------

def interval_strategy(domain_size: int):
    return st.tuples(
        st.integers(min_value=0, max_value=domain_size - 2),
        st.integers(min_value=1, max_value=domain_size // 2),
    ).map(lambda pair: (pair[0], min(pair[0] + pair[1], domain_size - 1)))


def interval_set_strategy(domain_size: int, max_count: int = 12):
    return st.lists(interval_strategy(domain_size), min_size=1, max_size=max_count)


def box_set_strategy(domain_size: int, dimension: int, max_count: int = 10):
    box = st.tuples(*[interval_strategy(domain_size) for _ in range(dimension)])
    return st.lists(box, min_size=1, max_size=max_count)


def to_boxset_1d(pairs) -> BoxSet:
    return BoxSet.from_intervals(pairs)


def to_boxset(boxes) -> BoxSet:
    lows = np.array([[rng[0] for rng in box] for box in boxes])
    highs = np.array([[rng[1] for rng in box] for box in boxes])
    return BoxSet(lows, highs)


# -- dyadic decomposition -----------------------------------------------------------

class TestDyadicProperties:
    @given(st.integers(min_value=2, max_value=9),
           st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=500),
           st.integers(min_value=-1, max_value=9))
    @settings(max_examples=150, deadline=None)
    def test_cover_partitions_interval(self, height, raw_lo, raw_hi, max_level):
        size = 2 ** height
        lo, hi = sorted((raw_lo % size, raw_hi % size))
        level = None if max_level < 0 else min(max_level, height)
        domain = DyadicDomain(size, max_level=level)
        cover = domain.cover(lo, hi)
        covered = []
        for node in cover:
            interval = domain.interval_of(node)
            covered.extend(range(interval.lo, interval.hi + 1))
        assert sorted(covered) == list(range(lo, hi + 1))
        if level is None:
            assert len(cover) <= max(1, 2 * height)

    @given(st.integers(min_value=2, max_value=9),
           st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=150, deadline=None)
    def test_lemma4_exactly_one_common_node(self, height, raw_lo, raw_hi, raw_point):
        size = 2 ** height
        lo, hi = sorted((raw_lo % size, raw_hi % size))
        point = raw_point % size
        domain = DyadicDomain(size)
        common = set(domain.cover(lo, hi)) & set(domain.point_cover(point))
        assert len(common) == (1 if lo <= point <= hi else 0)

    @given(st.integers(min_value=1, max_value=9),
           st.lists(st.tuples(st.integers(0, 500), st.integers(0, 500)),
                    min_size=1, max_size=30),
           st.integers(min_value=-1, max_value=9))
    @settings(max_examples=150, deadline=None)
    def test_batched_covers_equal_scalar_covers(self, height, raw_pairs,
                                                max_level):
        """The vectorised level-sweep emits exactly the scalar walk's ids."""
        size = 2 ** height
        level = None if max_level < 0 else min(max_level, height)
        domain = DyadicDomain(size, max_level=level)
        pairs = [sorted((lo % size, hi % size)) for lo, hi in raw_pairs]
        lows = np.array([p[0] for p in pairs], dtype=np.int64)
        highs = np.array([p[1] for p in pairs], dtype=np.int64)
        ids, lengths = domain.covers(lows, highs)
        expected_ids: list[int] = []
        expected_lengths = []
        for lo, hi in pairs:
            cover = domain.cover(int(lo), int(hi))
            expected_ids.extend(cover)
            expected_lengths.append(len(cover))
        assert ids.tolist() == expected_ids
        assert lengths.tolist() == expected_lengths


# -- fused letter-sum kernels -----------------------------------------------------------

class TestFusedLetterSumProperties:
    """The fused sign+reduce paths are bit-identical to the naive reduction.

    The reference below recomputes every letter sum with scalar covers and
    plain ``signs()`` calls — the shape of the pre-fusion implementation —
    so these properties pin the fused workspace/table/numba paths (whichever
    this process resolves to) against first principles.
    """

    @staticmethod
    def reference_letter_sums(bank, dim, letter, lows, highs):
        dyadic = bank.domain.dyadic(dim)
        xi = bank.xi_banks[dim]

        def point_sums(coords):
            columns = []
            for coordinate in coords:
                cover = np.asarray(dyadic.point_cover(int(coordinate)),
                                   dtype=np.int64)
                columns.append(xi.signs(cover).sum(axis=1, dtype=np.float64))
            return np.stack(columns, axis=1) if columns else \
                np.zeros((xi.num_families, 0))

        if letter is Letter.INTERVAL:
            columns = []
            for lo, hi in zip(lows, highs):
                cover = np.asarray(dyadic.cover(int(lo), int(hi)),
                                   dtype=np.int64)
                columns.append(xi.signs(cover).sum(axis=1, dtype=np.float64))
            return np.stack(columns, axis=1) if columns else \
                np.zeros((xi.num_families, 0))
        if letter is Letter.ENDPOINTS:
            return point_sums(lows) + point_sums(highs)
        if letter is Letter.LOWER_POINT:
            return point_sums(lows)
        if letter is Letter.UPPER_POINT:
            return point_sums(highs)
        if letter is Letter.LOWER_LEAF:
            leaves = dyadic.size - 1 + np.asarray(lows, dtype=np.int64)
            return xi.signs(leaves).astype(np.float64)
        leaves = dyadic.size - 1 + np.asarray(highs, dtype=np.int64)
        return xi.signs(leaves).astype(np.float64)

    @given(interval_set_strategy(64, max_count=20),
           st.sampled_from(list(Letter)),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_fused_sums_bit_identical_to_reference(self, pairs, letter, seed):
        from repro.core.atomic import SketchBank, all_words

        domain = Domain((64,))
        bank = SketchBank(domain, all_words([letter], 1), 16, seed=seed)
        lows = np.array([p[0] for p in pairs], dtype=np.int64)
        highs = np.array([p[1] for p in pairs], dtype=np.int64)
        fused = bank.letter_sums(0, letter, lows, highs)
        reference = self.reference_letter_sums(bank, 0, letter, lows, highs)
        assert np.array_equal(fused, reference)
        # Repeat once the table is warm (repeated requests flip the bank
        # from polynomial evaluation to table gathers mid-life).
        again = bank.letter_sums(0, letter, lows, highs)
        assert np.array_equal(again, reference)


# -- exact join algorithms -------------------------------------------------------------

class TestExactJoinProperties:
    @given(interval_set_strategy(64), interval_set_strategy(64))
    @settings(max_examples=100, deadline=None)
    def test_interval_join_matches_oracle(self, left_pairs, right_pairs):
        left = to_boxset_1d(left_pairs)
        right = to_boxset_1d(right_pairs)
        oracle = sum(
            1
            for lo_l, hi_l in left_pairs
            for lo_r, hi_r in right_pairs
            if lo_l < hi_r and lo_r < hi_l and lo_l < hi_l and lo_r < hi_r
        )
        assert interval_join_count(left, right) == oracle

    @given(box_set_strategy(32, 2), box_set_strategy(32, 2))
    @settings(max_examples=60, deadline=None)
    def test_plane_sweep_matches_brute_force(self, left_boxes, right_boxes):
        left = to_boxset(left_boxes)
        right = to_boxset(right_boxes)
        assert plane_sweep_join_count(left, right) == brute_force_join_count(left, right)

    @given(interval_set_strategy(64), interval_set_strategy(64))
    @settings(max_examples=60, deadline=None)
    def test_join_commutes(self, left_pairs, right_pairs):
        left = to_boxset_1d(left_pairs)
        right = to_boxset_1d(right_pairs)
        assert interval_join_count(left, right) == interval_join_count(right, left)

    @given(interval_set_strategy(64))
    @settings(max_examples=50, deadline=None)
    def test_closed_join_dominates_strict_join(self, pairs):
        data = to_boxset_1d(pairs)
        assert interval_join_count(data, data, closed=True) >= interval_join_count(data, data)


# -- estimator expectation --------------------------------------------------------------

class TestEstimatorExpectationProperties:
    @given(interval_set_strategy(32, max_count=8), interval_set_strategy(32, max_count=8))
    @settings(max_examples=40, deadline=None)
    def test_interval_join_expectation_equals_truth(self, left_pairs, right_pairs):
        domain = Domain(32)
        left = to_boxset_1d(left_pairs)
        right = to_boxset_1d(right_pairs)
        estimator = IntervalJoinEstimator(domain, num_instances=1, seed=0,
                                          endpoint_policy="transform")
        truth = interval_join_count(left, right)
        assert abs(expected_estimator_value(estimator, left, right) - truth) < 1e-6

    @given(interval_set_strategy(32, max_count=8), interval_set_strategy(32, max_count=8))
    @settings(max_examples=40, deadline=None)
    def test_explicit_policy_expectation_equals_truth(self, left_pairs, right_pairs):
        domain = Domain(32)
        left = to_boxset_1d(left_pairs)
        right = to_boxset_1d(right_pairs)
        estimator = IntervalJoinEstimator(domain, num_instances=1, seed=0,
                                          endpoint_policy="explicit")
        truth = interval_join_count(left, right)
        assert abs(expected_estimator_value(estimator, left, right) - truth) < 1e-6


# -- geometry and domain ----------------------------------------------------------------------

class TestGeometryProperties:
    @given(interval_strategy(64), interval_strategy(64))
    @settings(max_examples=200, deadline=None)
    def test_relationship_classification_consistent_with_predicates(self, a_pair, b_pair):
        a = Interval(*a_pair)
        b = Interval(*b_pair)
        relationship = classify_intervals(a, b)
        assert relationship.is_overlapping == a.overlaps(b)
        assert relationship.is_overlapping_plus == a.overlaps_plus(b)

    @given(interval_set_strategy(64), interval_set_strategy(64))
    @settings(max_examples=60, deadline=None)
    def test_endpoint_transform_preserves_join_size(self, left_pairs, right_pairs):
        domain = Domain(64)
        transform = EndpointTransform(domain)
        left = to_boxset_1d(left_pairs)
        right = to_boxset_1d(right_pairs)
        assert interval_join_count(left, right) == interval_join_count(
            transform.transform_left(left), transform.transform_right(right))

    @given(interval_set_strategy(64))
    @settings(max_examples=60, deadline=None)
    def test_self_join_size_lower_bound(self, pairs):
        # SJ(X_I) counts squared cell hits, so it is at least the total number
        # of cover elements (every count >= 1) and at most its square.
        domain = Domain(64)
        data = to_boxset_1d(pairs)
        counts = cover_counts(data, domain, (Letter.INTERVAL,))
        total = sum(counts.values())
        sj = self_join_size(data, domain, (Letter.INTERVAL,))
        assert len(counts) <= sj <= total ** 2


# -- substrate data structures --------------------------------------------------------------------

class TestFenwickProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                              st.integers(min_value=-3, max_value=3)),
                    min_size=0, max_size=80),
           st.integers(min_value=0, max_value=63))
    @settings(max_examples=100, deadline=None)
    def test_prefix_sum_matches_naive(self, updates, query):
        tree = FenwickTree(64)
        reference = np.zeros(64, dtype=np.int64)
        for position, delta in updates:
            tree.add(position, delta)
            reference[position] += delta
        assert tree.prefix_sum(query) == int(reference[: query + 1].sum())


class TestBoostingProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_median_of_means_within_value_range(self, values):
        estimate, _ = median_of_means(np.array(values))
        assert min(values) - 1e-9 <= estimate <= max(values) + 1e-9

    @given(st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_constant_values_are_recovered_exactly(self, value, group_size, num_groups):
        plan = BoostingPlan(group_size=group_size, num_groups=num_groups)
        values = np.full(plan.total_instances, value)
        estimate, _ = median_of_means(values, plan)
        assert estimate == pytest.approx(value, rel=1e-12, abs=1e-9)
