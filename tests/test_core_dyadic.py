"""Tests for the dyadic decomposition (Lemmas 2-4 of the paper)."""

import pytest

from repro.core.dyadic import DyadicDomain, DyadicInterval, next_power_of_two
from repro.errors import DomainError


class TestNextPowerOfTwo:
    @pytest.mark.parametrize("value,expected", [(1, 1), (2, 2), (3, 4), (5, 8),
                                                (8, 8), (9, 16), (1000, 1024)])
    def test_values(self, value, expected):
        assert next_power_of_two(value) == expected


class TestDomainBasics:
    def test_padding(self):
        domain = DyadicDomain(100)
        assert domain.requested_size == 100
        assert domain.size == 128
        assert domain.height == 7
        assert domain.num_nodes == 255

    def test_invalid_size(self):
        with pytest.raises(DomainError):
            DyadicDomain(0)

    def test_invalid_max_level(self):
        with pytest.raises(DomainError):
            DyadicDomain(16, max_level=5)
        with pytest.raises(DomainError):
            DyadicDomain(16, max_level=-1)

    def test_with_max_level(self):
        domain = DyadicDomain(64).with_max_level(2)
        assert domain.max_level == 2
        assert domain.size == 64


class TestNodeNumbering:
    def test_root_is_node_zero(self):
        domain = DyadicDomain(16)
        assert domain.node_id(4, 0) == 0
        assert domain.interval_of(0) == DyadicInterval(4, 0)

    def test_leaves_are_last_nodes(self):
        domain = DyadicDomain(16)
        for coordinate in range(16):
            node = domain.leaf_id(coordinate)
            assert node == 15 + coordinate
            assert domain.interval_of(node) == DyadicInterval(0, coordinate)

    def test_round_trip(self):
        domain = DyadicDomain(32)
        for node in range(domain.num_nodes):
            interval = domain.interval_of(node)
            assert domain.node_id(interval.level, interval.index) == node

    def test_dyadic_interval_bounds(self):
        interval = DyadicInterval(level=3, index=2)
        assert interval.lo == 16
        assert interval.hi == 23
        assert interval.length == 8
        assert interval.contains_point(20)
        assert not interval.contains_point(24)

    def test_out_of_range_node(self):
        domain = DyadicDomain(8)
        with pytest.raises(DomainError):
            domain.interval_of(domain.num_nodes)
        with pytest.raises(DomainError):
            domain.node_id(1, 4)


class TestCovers:
    def test_cover_of_whole_domain_is_root(self):
        domain = DyadicDomain(64)
        assert domain.cover(0, 63) == [0]

    def test_cover_of_single_point_is_leaf(self):
        domain = DyadicDomain(64)
        assert domain.cover(5, 5) == [domain.leaf_id(5)]

    def test_cover_is_disjoint_and_exact(self, rng):
        domain = DyadicDomain(256)
        for _ in range(100):
            lo, hi = sorted(rng.integers(0, 256, size=2))
            covered = []
            for node in domain.cover(int(lo), int(hi)):
                interval = domain.interval_of(node)
                covered.extend(range(interval.lo, interval.hi + 1))
            assert sorted(covered) == list(range(lo, hi + 1))
            assert len(covered) == len(set(covered))

    def test_cover_size_bound_lemma2(self, rng):
        domain = DyadicDomain(1024)
        bound = 2 * domain.height
        for _ in range(200):
            lo, hi = sorted(rng.integers(0, 1024, size=2))
            assert len(domain.cover(int(lo), int(hi))) <= bound

    def test_cover_respects_max_level(self, rng):
        domain = DyadicDomain(256, max_level=3)
        for _ in range(50):
            lo, hi = sorted(rng.integers(0, 256, size=2))
            for node in domain.cover(int(lo), int(hi)):
                assert domain.interval_of(node).level <= 3

    def test_cover_with_max_level_zero_enumerates_points(self):
        domain = DyadicDomain(64, max_level=0)
        cover = domain.cover(10, 14)
        assert len(cover) == 5
        assert all(domain.interval_of(node).level == 0 for node in cover)

    def test_empty_interval_rejected(self):
        domain = DyadicDomain(32)
        with pytest.raises(DomainError):
            domain.cover(10, 5)

    def test_vectorised_covers_match_scalar(self, rng):
        domain = DyadicDomain(128)
        lows = rng.integers(0, 100, size=30)
        highs = lows + rng.integers(0, 27, size=30)
        ids, lengths = domain.covers(lows, highs)
        offset = 0
        for i in range(30):
            expected = domain.cover(int(lows[i]), int(highs[i]))
            assert list(ids[offset:offset + lengths[i]]) == expected
            offset += lengths[i]


class TestPointCovers:
    def test_point_cover_size_lemma3(self):
        domain = DyadicDomain(256)
        for coordinate in (0, 17, 255):
            cover = domain.point_cover(coordinate)
            assert len(cover) == domain.height + 1
            levels = {domain.interval_of(node).level for node in cover}
            assert levels == set(range(domain.height + 1))

    def test_point_cover_contains_point(self):
        domain = DyadicDomain(128)
        for coordinate in (0, 1, 63, 127):
            for node in domain.point_cover(coordinate):
                assert domain.interval_of(node).contains_point(coordinate)

    def test_point_cover_respects_max_level(self):
        domain = DyadicDomain(128, max_level=2)
        assert len(domain.point_cover(77)) == 3

    def test_vectorised_point_covers_match_scalar(self, rng):
        domain = DyadicDomain(64)
        coords = rng.integers(0, 64, size=20)
        ids, lengths = domain.point_covers(coords)
        per = int(lengths[0])
        for i, coordinate in enumerate(coords):
            assert list(ids[i * per:(i + 1) * per]) == domain.point_cover(int(coordinate))

    def test_out_of_domain_coordinate_rejected(self):
        domain = DyadicDomain(32)
        with pytest.raises(DomainError):
            domain.point_cover(32)


class TestLemma4:
    """A point lies in an interval iff the covers share exactly one node."""

    @pytest.mark.parametrize("max_level", [None, 0, 2, 5])
    def test_common_nodes(self, rng, max_level):
        domain = DyadicDomain(128, max_level=max_level)
        for _ in range(200):
            lo, hi = sorted(rng.integers(0, 128, size=2))
            point = int(rng.integers(0, 128))
            interval_cover = set(domain.cover(int(lo), int(hi)))
            point_cover = set(domain.point_cover(point))
            common = interval_cover & point_cover
            if lo <= point <= hi:
                assert len(common) == 1
            else:
                assert len(common) == 0

    def test_describe_cover(self):
        domain = DyadicDomain(16)
        description = domain.describe_cover(3, 12)
        assert all(isinstance(item, DyadicInterval) for item in description)
        assert sum(item.length for item in description) == 10
