"""Tests for the sharded sketch store: routing, exact merging, views."""

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.errors import ServiceError
from repro.service.specs import EstimatorSpec, apply_update, run_estimate
from repro.service.store import ShardedSketchStore, partition_boxes, shard_ids

from tests.conftest import random_boxes


def _degenerate(boxes):
    from repro.geometry.boxset import BoxSet

    return BoxSet(boxes.lows, boxes.lows.copy(), validate=False)


#: (family, domain sizes, options) for every estimator family in the registry.
ALL_FAMILY_SPECS = [
    ("interval", (256,), {}),
    ("rectangle", (256, 256), {}),
    ("hyperrect", (64, 64, 64), {}),
    ("extended_overlap", (256, 256), {}),
    ("common_endpoint", (256, 256), {}),
    ("containment", (256, 256), {}),
    ("epsilon", (256, 256), {"epsilon": 3}),
    ("range", (256, 256), {}),
]


def _make_spec(family, sizes, options, *, num_instances=16, seed=11):
    return EstimatorSpec.create(family, sizes, num_instances, seed=seed, **options)


def _family_data(rng, family, sizes, count):
    boxes = random_boxes(rng, count, sizes[0], len(sizes))
    if family == "epsilon":
        return _degenerate(boxes)
    return boxes


def _all_banks(estimator):
    """The underlying SketchBanks of any estimator family."""
    for attr in ("_left_bank", "_right_bank", "_outer_bank", "_inner_bank",
                 "_point_bank", "_cube_bank", "_bank"):
        bank = getattr(estimator, attr, None)
        if bank is not None:
            yield attr, bank


class TestRouting:
    def test_shard_ids_deterministic_and_in_range(self, rng):
        boxes = random_boxes(rng, 500, 256, 2)
        ids_a = shard_ids(boxes, 4)
        ids_b = shard_ids(boxes, 4)
        assert np.array_equal(ids_a, ids_b)
        assert ids_a.min() >= 0 and ids_a.max() < 4

    def test_same_box_always_same_shard(self, rng):
        boxes = random_boxes(rng, 50, 256, 2)
        doubled = boxes.concat(boxes)
        ids = shard_ids(doubled, 8)
        assert np.array_equal(ids[:50], ids[50:])

    def test_routing_spreads_load(self, rng):
        boxes = random_boxes(rng, 2000, 1024, 2)
        counts = np.bincount(shard_ids(boxes, 4), minlength=4)
        # A uniform hash should land far away from all-on-one-shard.
        assert counts.min() > 0
        assert counts.max() < 2000 * 0.5

    def test_single_shard_short_circuit(self, rng):
        boxes = random_boxes(rng, 10, 256, 1)
        assert np.array_equal(shard_ids(boxes, 1), np.zeros(10, dtype=np.int64))

    def test_partition_covers_everything(self, rng):
        boxes = random_boxes(rng, 300, 256, 2)
        parts = partition_boxes(boxes, 4)
        assert sum(len(p) for p in parts if p is not None) == len(boxes)

    def test_invalid_shard_count(self, rng):
        with pytest.raises(ServiceError):
            shard_ids(random_boxes(rng, 3, 256, 1), 0)


class TestShardedStore:
    @pytest.mark.parametrize("family,sizes,options", ALL_FAMILY_SPECS,
                             ids=[f[0] for f in ALL_FAMILY_SPECS])
    def test_sharded_equals_unsharded_bit_identical(self, rng, family, sizes, options):
        """The acceptance criterion: 4 shards merge to the unsharded sketch.

        Counter updates are integer-valued, so float64 accumulation is exact
        and the equality is bit-for-bit, not approximate.
        """
        spec = _make_spec(family, sizes, options)
        store = ShardedSketchStore(4)
        store.register("est", spec)

        single = spec.build()
        for side in spec.info.sides:
            data = _family_data(rng, family, sizes, 200)
            store.apply("est", side, "insert", data)
            apply_update(spec, single, side, "insert", data)
            # ... and exercise the delete path with a subset.
            removed = data[np.arange(0, len(data), 3)]
            store.apply("est", side, "delete", removed)
            apply_update(spec, single, side, "delete", removed)

        merged = store.merge_view("est")
        for (attr, merged_bank), (_, single_bank) in zip(_all_banks(merged),
                                                         _all_banks(single)):
            for word in single_bank.words:
                assert np.array_equal(merged_bank.counter(word),
                                      single_bank.counter(word)), (attr, word)

        query = None
        if spec.info.queryable:
            query = random_boxes(rng, 1, sizes[0], len(sizes))
        merged_result = run_estimate(spec, merged, query)
        single_result = run_estimate(spec, single, query)
        assert merged_result.estimate == single_result.estimate
        assert merged_result.left_count == single_result.left_count
        assert merged_result.right_count == single_result.right_count

    def test_merge_view_is_a_snapshot(self, rng):
        spec = _make_spec("rectangle", (256, 256), {})
        store = ShardedSketchStore(3)
        store.register("est", spec)
        data = random_boxes(rng, 100, 256, 2)
        store.apply("est", "left", "insert", data)
        view = store.merge_view("est")
        before = view.left_bank.counter(view.left_bank.words[0])
        store.apply("est", "left", "insert", random_boxes(rng, 50, 256, 2))
        assert np.array_equal(view.left_bank.counter(view.left_bank.words[0]), before)

    def test_version_bumps_on_updates(self, rng):
        store = ShardedSketchStore(2)
        store.register("est", _make_spec("rectangle", (256, 256), {}))
        assert store.version("est") == 0
        store.apply("est", "left", "insert", random_boxes(rng, 10, 256, 2))
        assert store.version("est") == 1
        from repro.geometry.boxset import BoxSet

        store.apply("est", "left", "insert", BoxSet.empty(2))
        assert store.version("est") == 1  # empty batches are no-ops

    def test_duplicate_registration_rejected(self):
        store = ShardedSketchStore(2)
        spec = _make_spec("rectangle", (256, 256), {})
        store.register("est", spec)
        with pytest.raises(ServiceError):
            store.register("est", spec)

    def test_unknown_name_rejected(self, rng):
        store = ShardedSketchStore(2)
        with pytest.raises(ServiceError):
            store.apply("nope", "left", "insert", random_boxes(rng, 3, 256, 2))
        with pytest.raises(ServiceError):
            store.merge_view("nope")

    def test_unknown_side_and_kind_rejected(self, rng):
        store = ShardedSketchStore(2)
        store.register("est", _make_spec("rectangle", (256, 256), {}))
        data = random_boxes(rng, 3, 256, 2)
        with pytest.raises(ServiceError):
            store.apply("est", "middle", "insert", data)
        with pytest.raises(ServiceError):
            store.apply("est", "left", "upsert", data)

    def test_containment_side_aliases(self, rng):
        store = ShardedSketchStore(2)
        store.register("est", _make_spec("containment", (256, 256), {}))
        data = random_boxes(rng, 20, 256, 2)
        store.apply("est", "left", "insert", data)   # alias for "outer"
        store.apply("est", "inner", "insert", data)
        view = store.merge_view("est")
        assert view.outer_count == 20 and view.inner_count == 20

    def test_store_estimate_convenience(self, rng):
        store = ShardedSketchStore(4)
        store.register("est", _make_spec("rectangle", (256, 256),
                                         {}, num_instances=32))
        store.apply("est", "left", "insert", random_boxes(rng, 100, 256, 2))
        store.apply("est", "right", "insert", random_boxes(rng, 100, 256, 2))
        result = store.estimate("est")
        assert result.left_count == 100 and result.right_count == 100

    def test_unregister(self, rng):
        store = ShardedSketchStore(2)
        store.register("est", _make_spec("rectangle", (256, 256), {}))
        store.unregister("est")
        assert "est" not in store
        with pytest.raises(ServiceError):
            store.unregister("est")


class TestSpecs:
    def test_spec_round_trip(self):
        for family, sizes, options in ALL_FAMILY_SPECS:
            spec = _make_spec(family, sizes, options)
            assert EstimatorSpec.from_dict(spec.to_dict()) == spec

    def test_spec_from_domain_preserves_max_level(self):
        domain = Domain.square(256, dimension=2, max_level=4)
        spec = EstimatorSpec.create("rectangle", domain, 8)
        assert spec.domain().signature() == domain.signature()

    def test_unknown_family_rejected(self):
        with pytest.raises(ServiceError):
            EstimatorSpec.create("voronoi", (256,), 8)

    def test_unknown_option_rejected(self):
        with pytest.raises(ServiceError):
            EstimatorSpec.create("rectangle", (256, 256), 8, wibble=3)

    def test_missing_required_option_rejected(self):
        with pytest.raises(ServiceError):
            EstimatorSpec.create("epsilon", (256, 256), 8)

    def test_bad_endpoint_policy_rejected(self):
        with pytest.raises(ServiceError):
            EstimatorSpec.create("rectangle", (256, 256), 8,
                                 endpoint_policy="sometimes")

    def test_shared_seed_specs_build_merge_compatible_estimators(self, rng):
        spec = _make_spec("rectangle", (256, 256), {})
        first, second = spec.build(), spec.build()
        first.insert_left(random_boxes(rng, 10, 256, 2))
        second.insert_left(random_boxes(rng, 10, 256, 2))
        first.merge(second)  # must not raise
        assert first.left_count == 20


class TestDeltaPropagation:
    """Delta-applied merged views: O(delta) refresh, bit-identical results."""

    @staticmethod
    def _run_rounds(family, sizes, options, *, delta_propagation, seed,
                    rounds=4, inserts=40, deletions=5):
        from repro.geometry.rectangle import Rect
        from repro.service.service import EstimationService

        rng = np.random.default_rng(seed)
        service = EstimationService(num_shards=3, flush_threshold=None,
                                    delta_propagation=delta_propagation)
        spec = _make_spec(family, sizes, options)
        service.register("est", spec)
        query = None
        if spec.info.queryable:
            box = random_boxes(rng, 1, sizes[0], len(sizes))
            query = Rect.from_bounds(box.lows[0], box.highs[0])
        outputs = []
        for round_index in range(rounds):
            for side in spec.info.sides:
                data = _family_data(rng, family, sizes, inserts)
                service.ingest("est", data, side=side)
                if round_index % 2 == 1 and deletions:
                    service.ingest("est", data[:deletions], side=side,
                                   kind="delete")
            service.flush()
            result = service.estimate("est", query)
            outputs.append((result.estimate,
                            result.instance_values.tobytes(),
                            result.left_count, result.right_count))
        return outputs, service

    @pytest.mark.parametrize("family,sizes,options", ALL_FAMILY_SPECS,
                             ids=[f[0] for f in ALL_FAMILY_SPECS])
    @pytest.mark.parametrize("seed", [3, 17])
    def test_delta_applied_views_bit_identical(self, family, sizes, options,
                                               seed):
        """Interleaved flushes + deletions: delta on == delta off, bit for bit.

        Counter updates are exact integers in float64, so the fused
        ``base + delta`` tensor add reproduces the full shard re-merge
        exactly — including the instance-value vectors, not just the
        boosted estimates.
        """
        with_delta, on = self._run_rounds(family, sizes, options,
                                          delta_propagation=True, seed=seed)
        without_delta, off = self._run_rounds(family, sizes, options,
                                              delta_propagation=False,
                                              seed=seed)
        assert with_delta == without_delta
        # Round 1 rebuilds (cold name); every later refresh delta-applies.
        assert on.stats.delta_applies == len(with_delta) - 1
        assert on.stats.rebuilds == 1
        assert off.stats.delta_applies == 0
        assert off.stats.rebuilds == len(without_delta)
        for stats in (on.stats, off.stats):
            assert stats.delta_applies + stats.rebuilds == stats.cache_misses

    def test_watch_take_roundtrip_and_drop_semantics(self, rng):
        spec = _make_spec("rectangle", (256, 256), {})
        store = ShardedSketchStore(2)
        store.register("est", spec)
        assert not store.is_watching("est")
        assert store.take_delta("est") is None

        store.watch_delta("est")
        assert store.is_watching("est")
        assert store.watched_names() == ["est"]
        data = random_boxes(rng, 30, 256, 2)
        store.record_delta("est", "left", "insert", data)
        delta = store.take_delta("est")
        assert delta is not None and delta.left_count == 30
        assert not store.is_watching("est")  # consuming resets the watch

        # mark_updated without delta_recorded (direct applies, snapshot
        # restores) invalidates the watch.
        store.watch_delta("est")
        store.apply("est", "left", "insert", data)
        assert not store.is_watching("est")
        assert store.take_delta("est") is None

        store.watch_delta("est")
        store.mark_updated("est", delta_recorded=True)
        assert store.is_watching("est")
        store.unregister("est")
        assert not store.is_watching("est")

    def test_budget_overflow_drops_watch(self, rng, monkeypatch):
        import repro.service.delta as delta_module

        monkeypatch.setattr(delta_module, "DELTA_BOX_BUDGET", 50)
        spec = _make_spec("rectangle", (256, 256), {})
        store = ShardedSketchStore(2)
        store.register("est", spec)
        store.watch_delta("est")
        store.record_delta("est", "left", "insert", random_boxes(rng, 40, 256, 2))
        assert store.is_watching("est")
        store.record_delta("est", "left", "insert", random_boxes(rng, 40, 256, 2))
        assert not store.is_watching("est")  # watched-but-unqueried cap hit

    def test_eviction_unwatches_and_falls_back_to_rebuild(self, rng):
        from repro.service.service import EstimationService

        service = EstimationService(num_shards=2, flush_threshold=None,
                                    cache_size=1, delta_propagation=True)
        for name in ("a", "b"):
            service.register(name, _make_spec("rectangle", (256, 256), {}))
            service.ingest(name, random_boxes(rng, 20, 256, 2), side="left")
            service.ingest(name, random_boxes(rng, 20, 256, 2), side="right")
        service.flush()
        service.estimate("a")
        assert service.store.watched_names() == ["a"]
        service.estimate("b")  # evicts "a" from the single-entry cache
        assert service.store.watched_names() == ["b"]
        assert service.stats.evictions == 1
        # "a" lost both its cached view and its watch: next refresh rebuilds.
        service.ingest("a", random_boxes(rng, 10, 256, 2), side="left")
        service.flush()
        service.estimate("a")
        assert service.stats.delta_applies == 0
        assert service.stats.rebuilds == service.stats.cache_misses

    def test_direct_store_mutation_falls_back_to_rebuild(self, rng):
        """Mutations that bypass the flush path must not poison the cache."""
        from repro.service.service import EstimationService

        service = EstimationService(num_shards=2, flush_threshold=None,
                                    delta_propagation=True)
        service.register("est", _make_spec("rectangle", (256, 256), {}))
        service.ingest("est", random_boxes(rng, 30, 256, 2), side="left")
        service.flush()
        first = service.estimate("est")
        assert service.stats.rebuilds == 1

        extra = random_boxes(rng, 25, 256, 2)
        service.store.apply("est", "left", "insert", extra)  # no delta recorded
        refreshed = service.estimate("est")
        assert service.stats.rebuilds == 2  # fell back, no stale delta-apply
        assert service.stats.delta_applies == 0
        assert refreshed.left_count == first.left_count + len(extra)
