"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.data import synthetic
from repro.geometry.boxset import BoxSet, PointSet


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def domain_1d() -> Domain:
    return Domain(256)


@pytest.fixture
def domain_2d() -> Domain:
    return Domain.square(256, dimension=2)


@pytest.fixture
def small_intervals(rng, domain_1d) -> tuple[BoxSet, BoxSet]:
    left = synthetic.generate_intervals(60, domain_1d, mean_length=20, rng=rng)
    right = synthetic.generate_intervals(60, domain_1d, mean_length=20, rng=rng)
    return left, right


@pytest.fixture
def small_rectangles(rng, domain_2d) -> tuple[BoxSet, BoxSet]:
    left = synthetic.generate_rectangles(50, domain_2d, rng=rng)
    right = synthetic.generate_rectangles(50, domain_2d, rng=rng)
    return left, right


@pytest.fixture
def small_points(rng, domain_2d) -> tuple[PointSet, PointSet]:
    left = synthetic.generate_points(60, domain_2d, rng=rng)
    right = synthetic.generate_points(60, domain_2d, rng=rng)
    return left, right


def random_boxes(rng: np.random.Generator, count: int, domain_size: int,
                 dimension: int, *, max_extent: int | None = None,
                 allow_degenerate: bool = False) -> BoxSet:
    """Utility used by several test modules to build random box sets."""
    if max_extent is None:
        max_extent = max(2, domain_size // 4)
    lows = rng.integers(0, domain_size - 1, size=(count, dimension))
    extents = rng.integers(0 if allow_degenerate else 1, max_extent, size=(count, dimension))
    highs = np.minimum(lows + extents, domain_size - 1)
    lows = np.minimum(lows, highs)
    return BoxSet(lows, highs)
