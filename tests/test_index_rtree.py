"""Tests for the R-tree index."""

import numpy as np
import pytest

from repro.errors import SketchConfigError
from repro.exact.rectangle_join import brute_force_join_count
from repro.geometry.boxset import BoxSet
from repro.geometry.rectangle import Rect
from repro.index.rtree import RTree

from tests.conftest import random_boxes


class TestConstruction:
    def test_requires_boxes_or_dimension(self):
        with pytest.raises(SketchConfigError):
            RTree()

    def test_empty_tree(self):
        tree = RTree(dimension=2)
        assert len(tree) == 0
        assert tree.query(Rect.from_bounds((0, 0), (10, 10))) == []

    def test_max_entries_validation(self, rng):
        with pytest.raises(SketchConfigError):
            RTree(random_boxes(rng, 10, 50, 2), max_entries=2)

    def test_bulk_load_sizes(self, rng):
        data = random_boxes(rng, 200, 500, 2)
        tree = RTree(data, max_entries=8)
        assert len(tree) == 200
        assert tree.height >= 2

    def test_box_accessor(self, rng):
        data = random_boxes(rng, 10, 50, 2)
        tree = RTree(data)
        assert tree.box(3) == data.rect(3)


class TestQueries:
    def test_query_matches_brute_force(self, rng):
        data = random_boxes(rng, 250, 300, 2)
        tree = RTree(data, max_entries=8)
        for _ in range(25):
            lo = rng.integers(0, 250, size=2)
            hi = lo + rng.integers(1, 80, size=2)
            query = Rect.from_bounds(lo, hi)
            expected = {i for i in range(len(data)) if data.rect(i).overlaps(query)}
            assert set(tree.query(query)) == expected

    def test_query_closed_semantics(self):
        data = BoxSet(np.array([[0, 0]]), np.array([[10, 10]]))
        tree = RTree(data)
        touching = Rect.from_bounds((10, 3), (20, 8))
        assert tree.query(touching) == []
        assert tree.query(touching, closed=True) == [0]

    def test_one_dimensional_tree(self, rng):
        data = random_boxes(rng, 100, 200, 1)
        tree = RTree(data, max_entries=6)
        query = Rect.interval(50, 120)
        expected = {i for i in range(len(data)) if data.rect(i).overlaps(query)}
        assert set(tree.query(query)) == expected


class TestInsertion:
    def test_insert_into_empty_tree(self):
        tree = RTree(dimension=2)
        first = tree.insert(Rect.from_bounds((0, 0), (5, 5)))
        second = tree.insert(Rect.from_bounds((10, 10), (15, 15)))
        assert (first, second) == (0, 1)
        assert set(tree.query(Rect.from_bounds((0, 0), (20, 20)))) == {0, 1}

    def test_inserted_items_are_retrievable(self, rng):
        tree = RTree(dimension=2, max_entries=4)
        data = random_boxes(rng, 120, 150, 2)
        for i in range(len(data)):
            tree.insert(data.rect(i))
        assert len(tree) == 120
        for _ in range(15):
            lo = rng.integers(0, 120, size=2)
            hi = lo + rng.integers(1, 50, size=2)
            query = Rect.from_bounds(lo, hi)
            expected = {i for i in range(len(data)) if data.rect(i).overlaps(query)}
            assert set(tree.query(query)) == expected

    def test_mixed_bulk_load_and_insert(self, rng):
        initial = random_boxes(rng, 60, 100, 2)
        tree = RTree(initial, max_entries=6)
        extra = random_boxes(rng, 40, 100, 2)
        for i in range(len(extra)):
            tree.insert(extra.rect(i))
        combined = initial.concat(extra)
        query = Rect.from_bounds((20, 20), (70, 70))
        expected = {i for i in range(len(combined)) if combined.rect(i).overlaps(query)}
        assert set(tree.query(query)) == expected


class TestJoin:
    def test_join_count_matches_brute_force(self, rng):
        left = random_boxes(rng, 90, 150, 2)
        right = random_boxes(rng, 70, 150, 2)
        left_tree = RTree(left, max_entries=8)
        right_tree = RTree(right, max_entries=8)
        assert left_tree.join_count(right_tree) == brute_force_join_count(left, right)

    def test_join_pairs_are_correct(self, rng):
        left = random_boxes(rng, 30, 60, 2)
        right = random_boxes(rng, 30, 60, 2)
        left_tree = RTree(left)
        right_tree = RTree(right)
        pairs = set(left_tree.join(right_tree))
        expected = {(i, j) for i in range(len(left)) for j in range(len(right))
                    if left.rect(i).overlaps(right.rect(j))}
        assert pairs == expected

    def test_join_with_empty_tree(self, rng):
        left = RTree(random_boxes(rng, 10, 50, 2))
        right = RTree(dimension=2)
        assert left.join_count(right) == 0
