"""Log-shipped followers: incremental catch-up instead of snapshot re-ship.

A ``sync="wal"`` replica bootstraps from its owner's snapshot once, then
catches up by fetching and replaying the owner's WAL tail after its last
synced sequence number.  The claims under test:

* catch-up lands the follower **bit-identical** to the owner,
* an incremental sync ships **fewer bytes** than a snapshot re-ship
  (the whole point of log shipping),
* a follower whose missed window was checkpoint-truncated away falls
  back to a fresh snapshot bootstrap,
* wal-mode followers are excluded from the write fan-out and the read
  rotation until synced.
"""

import pytest

from repro.client import ServiceClient
from repro.cluster import RouterConfig, ThreadedClusterRouter
from repro.core.domain import Domain
from repro.server import ServerConfig, ThreadedServer
from repro.service import EstimationService, synthetic_boxes, synthetic_queries
from repro.wal import WalWriter

pytestmark = pytest.mark.e2e

DOMAIN = Domain.square(256, dimension=2)


def durable_server(wal_dir) -> ThreadedServer:
    service = EstimationService(num_shards=2)
    service.attach_wal(WalWriter(wal_dir, sync="none"))
    return ThreadedServer(service, config=ServerConfig(max_batch=16,
                                                       max_delay=0.001)).start()


@pytest.fixture()
def owner_and_follower(tmp_path):
    owner = durable_server(tmp_path / "owner-wal")
    follower = durable_server(tmp_path / "follower-wal")
    try:
        yield owner, follower
    finally:
        for handle in (owner, follower):
            handle.service.detach_wal()
            handle.stop()


@pytest.fixture()
def router(owner_and_follower):
    owner, _follower = owner_and_follower
    with ThreadedClusterRouter([("127.0.0.1", owner.port)],
                               config=RouterConfig(num_slots=16),
                               start_heartbeat=False) as handle:
        yield handle


def test_follower_catches_up_by_log_shipping(owner_and_follower, router):
    owner, follower = owner_and_follower
    manager = router.router.manager
    with ServiceClient("127.0.0.1", router.port) as client:
        client.register("ranges", family="range", sizes=[256, 256],
                        instances=32, seed=5)
        client.ingest("ranges", synthetic_boxes(DOMAIN, 300, seed=1),
                      side="data")
        client.flush()
        router.run(router.router.bootstrap_replica(
            "f1", "127.0.0.1", follower.port, source="w0", sync="wal"))
        info = manager.worker("f1")
        assert info.sync_mode == "wal" and info.synced_seqno >= 2

        # wal followers are outside the write fan-out and read rotation:
        # the next ingest reaches the owner only.
        assert [w.name for w in manager.writers("w0")] == ["w0"]
        assert manager.reader("w0").name == "w0"
        client.ingest("ranges", synthetic_boxes(DOMAIN, 120, seed=2),
                      side="data")
        client.flush()
        assert follower.service.merged_view("ranges").count == 300

        report = router.run(manager.sync_follower("f1"))
        assert report["mode"] == "wal" and report["records"] >= 1
        assert report["synced_seqno"] == info.synced_seqno

    # Incremental catch-up ships fewer bytes than the snapshot bootstrap
    # did — the point of log shipping.
    transfers = {t["mode"]: t for t in manager.transfers}
    assert transfers["wal"]["bytes"] < transfers["snapshot"]["bytes"]

    # And the follower is now a bit-identical mirror.
    queries = synthetic_queries(DOMAIN, 4, seed=9)
    for index in range(4):
        expected = owner.service.estimate("ranges", queries[index])
        got = follower.service.estimate("ranges", queries[index])
        assert got.estimate == expected.estimate


def test_truncated_tail_falls_back_to_snapshot_bootstrap(
        owner_and_follower, router, tmp_path):
    owner, follower = owner_and_follower
    manager = router.router.manager
    with ServiceClient("127.0.0.1", router.port) as client:
        client.register("ranges", family="range", sizes=[256, 256],
                        instances=32, seed=5)
        client.ingest("ranges", synthetic_boxes(DOMAIN, 200, seed=3),
                      side="data")
        client.flush()
        router.run(router.router.bootstrap_replica(
            "f1", "127.0.0.1", follower.port, source="w0", sync="wal"))

        # The follower misses a window which a checkpoint then truncates
        # out of the owner's log: the incremental path cannot cover it.
        client.ingest("ranges", synthetic_boxes(DOMAIN, 150, seed=4),
                      side="data")
        client.flush()
        owner.service.checkpoint(tmp_path / "owner-ckpt.sketch")

        report = router.run(manager.sync_follower("f1"))
        assert report["mode"] == "snapshot"

    queries = synthetic_queries(DOMAIN, 2, seed=11)
    for index in range(2):
        expected = owner.service.estimate("ranges", queries[index])
        got = follower.service.estimate("ranges", queries[index])
        assert got.estimate == expected.estimate


def test_sync_follower_rejects_fanout_replicas(owner_and_follower, router):
    _owner, follower = owner_and_follower
    from repro.errors import ServiceError

    with ServiceClient("127.0.0.1", router.port) as client:
        client.register("ranges", family="range", sizes=[256, 256],
                        instances=16, seed=5)
    router.run(router.router.bootstrap_replica(
        "r1", "127.0.0.1", follower.port, source="w0"))
    with pytest.raises(ServiceError):
        router.run(router.router.manager.sync_follower("r1"))
