"""Async tests of the network serving layer (server, coalescer, protocol).

The tests drive a real :class:`SketchServer` over loopback TCP from inside
one event loop (``asyncio.run`` wrappers — no async test plugin needed).
"""

import asyncio
import json
import threading

import pytest

from repro.core.domain import Domain
from repro.errors import ProtocolError, ServiceError
from repro.server import protocol
from repro.server.coalescer import EstimateCoalescer
from repro.server.server import ServerConfig, SketchServer
from repro.service import EstimationService, synthetic_boxes, synthetic_queries

DOMAIN = Domain.square(256, dimension=2)


def make_service(*, instances: int = 32, data: int = 400) -> EstimationService:
    service = EstimationService(num_shards=2)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=instances, seed=5)
    service.register("join", family="rectangle", domain=DOMAIN,
                     num_instances=instances, seed=7)
    service.ingest("ranges", synthetic_boxes(DOMAIN, data, seed=1), side="data")
    service.ingest("join", synthetic_boxes(DOMAIN, data, seed=2), side="left")
    service.ingest("join", synthetic_boxes(DOMAIN, data, seed=3), side="right")
    service.flush()
    return service


class Connection:
    """A minimal asyncio protocol client for the tests."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, port: int) -> "Connection":
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def send(self, payload: dict) -> None:
        self.writer.write(protocol.encode(payload))
        await self.writer.drain()

    async def recv(self) -> dict:
        line = await asyncio.wait_for(self.reader.readline(), timeout=30)
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    async def round_trip(self, payload: dict) -> dict:
        await self.send(payload)
        return await self.recv()

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_server(service, **config_kwargs) -> SketchServer:
    config = ServerConfig(port=0, **config_kwargs)
    server = SketchServer(service, config=config)
    await server.start()
    return server


def test_coalescing_bounds_engine_calls():
    """Satellite: N concurrent estimates -> <= ceil(N/max_batch) engine calls."""
    service = make_service()
    queries = synthetic_queries(DOMAIN, 32, seed=9)
    expected = [service.estimate("ranges", queries[i]).estimate
                for i in range(32)]

    calls = []
    inner = service.estimate_batch

    def counting(name, batch, **kwargs):
        calls.append(len(batch) if not isinstance(batch, int) else batch)
        return inner(name, batch, **kwargs)

    service.estimate_batch = counting

    async def main():
        # A long delay window so only the size trigger dispatches: every
        # engine call must carry a full max_batch of queries.
        server = await start_server(service, max_batch=8, max_delay=0.5)
        try:
            async def one(index: int) -> float:
                conn = await Connection.open(server.port)
                try:
                    row = protocol.boxes_to_rows(queries[index:index + 1])[0]
                    reply = await conn.round_trip(
                        {"op": "estimate", "name": "ranges", "query": row})
                    assert reply["ok"], reply
                    return reply["estimate"]
                finally:
                    await conn.close()

            return await asyncio.gather(*(one(i) for i in range(32)))
        finally:
            await server.close()

    got = asyncio.run(main())
    assert got == expected  # bit-identical to the scalar service path
    assert len(calls) <= 4  # ceil(32 / 8)
    assert sum(calls) == 32
    assert service.stats.coalesced_queries == 32
    assert service.stats.batch_estimates == len(calls)


def test_pipelined_connection_keeps_reply_order():
    service = make_service()
    queries = synthetic_queries(DOMAIN, 12, seed=3)
    rows = protocol.boxes_to_rows(queries)

    async def main():
        server = await start_server(service, max_batch=4, max_delay=0.01)
        try:
            conn = await Connection.open(server.port)
            for index, row in enumerate(rows):
                await conn.send({"op": "estimate", "name": "ranges",
                                 "query": row, "id": index})
            replies = [await conn.recv() for _ in rows]
            await conn.close()
            return replies
        finally:
            await server.close()

    replies = asyncio.run(main())
    assert [r["id"] for r in replies] == list(range(12))
    expected = [service.estimate("ranges", queries[i]).estimate
                for i in range(12)]
    assert [r["estimate"] for r in replies] == expected


def test_mixed_estimator_requests_coalesce_across_families():
    """Satellite: N requests over K estimators -> fewer than K dispatches.

    The shared request bucket batches *across* estimators: a mixed workload
    of range + join requests dispatches as one ``estimate_multi`` engine
    call (not one batch per estimator), and every reply stays bit-identical
    to its scalar estimate.
    """
    service = make_service()
    queries = synthetic_queries(DOMAIN, 16, seed=9)
    expected_range = [service.estimate("ranges", queries[i]).estimate
                      for i in range(16)]
    expected_join = service.estimate("join").estimate

    dispatches = []
    inner = service.estimate_multi

    def counting(requests, **kwargs):
        dispatches.append([name for name, _ in requests])
        return inner(requests, **kwargs)

    service.estimate_multi = counting

    async def main():
        # One big batch window so the whole mixed burst coalesces together.
        server = await start_server(service, max_batch=64, max_delay=0.05)
        try:
            conn = await Connection.open(server.port)
            rows = protocol.boxes_to_rows(queries)
            for index, row in enumerate(rows):
                await conn.send({"op": "estimate", "name": "ranges",
                                 "query": row, "id": 2 * index})
                await conn.send({"op": "estimate", "name": "join",
                                 "id": 2 * index + 1})
            replies = [await conn.recv() for _ in range(32)]
            await conn.close()
            return replies
        finally:
            await server.close()

    replies = asyncio.run(main())
    assert all(reply["ok"] for reply in replies)
    assert [reply["id"] for reply in replies] == list(range(32))
    for index, reply in enumerate(replies):
        if reply["name"] == "ranges":
            assert reply["estimate"] == expected_range[index // 2]
        else:
            assert reply["estimate"] == expected_join
    # 32 requests over 2 estimators: strictly fewer engine dispatches than
    # estimators x batches — the whole mixed burst rides one dispatch.
    assert len(dispatches) == 1
    assert set(dispatches[0]) == {"ranges", "join"}
    stats = service.stats
    assert stats.batch_estimates == 1
    assert stats.coalesced_queries == 32


def test_mixed_bucket_isolates_failures_per_estimator():
    """A bad request for one estimator must not poison the shared bucket."""
    service = make_service()
    service.register("empty", family="rectangle", domain=DOMAIN,
                     num_instances=8, seed=99)  # registered, never ingested
    queries = synthetic_queries(DOMAIN, 4, seed=5)
    expected = [service.estimate("ranges", queries[i]).estimate
                for i in range(4)]

    async def main():
        server = await start_server(service, max_batch=64, max_delay=0.05)
        try:
            conn = await Connection.open(server.port)
            for index, row in enumerate(protocol.boxes_to_rows(queries)):
                await conn.send({"op": "estimate", "name": "ranges",
                                 "query": row, "id": 2 * index})
                await conn.send({"op": "estimate", "name": "empty",
                                 "id": 2 * index + 1})
            replies = [await conn.recv() for _ in range(8)]
            await conn.close()
            return replies
        finally:
            await server.close()

    replies = asyncio.run(main())
    good = [r for r in replies if r["id"] % 2 == 0]
    bad = [r for r in replies if r["id"] % 2 == 1]
    assert all(r["ok"] for r in good), good
    assert [r["estimate"] for r in good] == expected
    assert all(not r["ok"] for r in bad)
    assert all("EstimationError" in r["error"] for r in bad)


def test_mixed_coalescing_reports_per_estimator_metrics():
    """Satellite: metrics verb exposes per-estimator coalesce factors and
    the cross-estimator dispatch count."""
    service = make_service()
    queries = synthetic_queries(DOMAIN, 8, seed=3)

    async def main():
        server = await start_server(service, max_batch=64, max_delay=0.05)
        try:
            conn = await Connection.open(server.port)
            for index, row in enumerate(protocol.boxes_to_rows(queries)):
                await conn.send({"op": "estimate", "name": "ranges",
                                 "query": row})
                await conn.send({"op": "estimate", "name": "join"})
            for _ in range(16):
                await conn.recv()
            metrics = await conn.round_trip({"op": "metrics"})
            stats = await conn.round_trip({"op": "stats"})
            await conn.close()
            return metrics["text"], stats
        finally:
            await server.close()

    text, stats = asyncio.run(main())
    assert "repro_server_coalesce_cross_estimator_dispatches_total 1" in text
    assert 'repro_server_estimator_coalesce_factor{name="ranges"} 8.000' in text
    assert 'repro_server_estimator_coalesce_factor{name="join"} 8.000' in text
    assert 'repro_server_estimator_coalesced_queries_total{name="ranges"} 8' \
        in text
    assert stats["server"]["cross_estimator_dispatches"] == 1


def test_queryless_family_estimates_coalesce():
    service = make_service()
    expected = service.estimate("join").estimate

    async def main():
        server = await start_server(service, max_batch=8, max_delay=0.01)
        try:
            conn = await Connection.open(server.port)
            for index in range(6):
                await conn.send({"op": "estimate", "name": "join", "id": index})
            replies = [await conn.recv() for _ in range(6)]
            await conn.close()
            return replies
        finally:
            await server.close()

    replies = asyncio.run(main())
    assert all(r["ok"] for r in replies)
    assert {r["estimate"] for r in replies} == {expected}


def test_overload_returns_structured_errors_and_never_hangs():
    """Acceptance: a full admission queue answers `overloaded`, not a stall."""
    service = make_service()
    queries = synthetic_queries(DOMAIN, 40, seed=11)
    rows = protocol.boxes_to_rows(queries)
    release = threading.Event()
    inner = service.estimate_batch

    def blocking(name, batch, **kwargs):
        assert release.wait(timeout=30), "test deadlock: release never set"
        return inner(name, batch, **kwargs)

    service.estimate_batch = blocking

    async def main():
        server = await start_server(service, max_batch=4, max_delay=0.001,
                                    max_queue=8)
        try:
            conn = await Connection.open(server.port)
            for index, row in enumerate(rows):
                await conn.send({"op": "estimate", "name": "ranges",
                                 "query": row, "id": index})
            # Give the rejections a moment to be generated while the
            # admitted batches are still blocked inside the engine call.
            await asyncio.sleep(0.1)
            release.set()
            replies = [await conn.recv() for _ in rows]
            await conn.close()
            return replies
        finally:
            release.set()
            await server.close()

    replies = asyncio.run(main())
    assert len(replies) == 40
    rejected = [r for r in replies if not r["ok"]]
    accepted = [r for r in replies if r["ok"]]
    assert rejected, "expected overload rejections with max_queue=8"
    assert all(r["error_code"] == "overloaded" for r in rejected)
    assert all("estimate" in r for r in accepted)
    # Replies stay in request order even when some are shed.
    assert [r["id"] for r in replies] == list(range(40))


def test_reload_hot_swaps_snapshot_without_dropping_connection(tmp_path):
    """Acceptance: `reload` swaps in a v2 binary snapshot on a live conn."""
    before = make_service(data=200)
    after = make_service(data=200)
    after.ingest("ranges", synthetic_boxes(DOMAIN, 600, seed=42), side="data")
    after.flush()
    snapshot = tmp_path / "after.sketch"
    after.save(snapshot, format="binary")

    query = synthetic_queries(DOMAIN, 1, seed=13)
    row = protocol.boxes_to_rows(query)[0]
    expect_before = before.estimate("ranges", query).estimate
    expect_after = after.estimate("ranges", query).estimate
    assert expect_before != expect_after

    async def main():
        server = await start_server(before, max_batch=4, max_delay=0.001)
        try:
            conn = await Connection.open(server.port)
            first = await conn.round_trip(
                {"op": "estimate", "name": "ranges", "query": row})
            reload_reply = await conn.round_trip(
                {"op": "reload", "path": str(snapshot)})
            second = await conn.round_trip(
                {"op": "estimate", "name": "ranges", "query": row})
            stats = await conn.round_trip({"op": "stats"})
            await conn.close()
            return first, reload_reply, second, stats
        finally:
            await server.close()

    first, reload_reply, second, stats = asyncio.run(main())
    assert first["ok"] and first["estimate"] == expect_before
    assert reload_reply["ok"]
    assert sorted(reload_reply["estimators"]) == ["join", "ranges"]
    assert second["ok"] and second["estimate"] == expect_after
    assert stats["server"]["reloads"] == 1


def test_protocol_errors_keep_connection_alive():
    service = make_service()

    async def main():
        server = await start_server(service)
        try:
            conn = await Connection.open(server.port)
            conn.writer.write(b"this is not json\n")
            bad_json = await conn.recv()
            unknown_op = await conn.round_trip({"op": "frobnicate"})
            bad_name = await conn.round_trip(
                {"op": "estimate", "name": "missing", "query": [0, 0, 1, 1]})
            missing_query = await conn.round_trip(
                {"op": "estimate", "name": "ranges"})
            still_alive = await conn.round_trip({"op": "ping"})
            quit_reply = await conn.round_trip({"op": "quit"})
            eof = await asyncio.wait_for(conn.reader.readline(), timeout=30)
            return bad_json, unknown_op, bad_name, missing_query, \
                still_alive, quit_reply, eof
        finally:
            await server.close()

    bad_json, unknown_op, bad_name, missing_query, alive, quit_reply, eof = \
        asyncio.run(main())
    assert bad_json["error_code"] == "protocol"
    assert unknown_op["error_code"] == "unknown_op"
    assert bad_name["error_code"] == "bad_request"
    assert "ServiceError" in bad_name["error"]
    assert missing_query["error_code"] == "bad_request"
    assert alive["ok"] and alive["version"] == protocol.PROTOCOL_VERSION
    assert quit_reply["ok"]
    assert eof == b""  # quit closes the connection server-side


def test_ingest_register_snapshot_and_metrics_ops(tmp_path):
    snapshot = tmp_path / "svc.sketch"

    async def main():
        server = await start_server(EstimationService(num_shards=2))
        try:
            conn = await Connection.open(server.port)
            registered = await conn.round_trip(
                {"op": "register", "name": "rq", "family": "range",
                 "sizes": [64, 64], "instances": 8, "seed": 3})
            ingested = await conn.round_trip(
                {"op": "ingest", "name": "rq", "side": "data",
                 "boxes": [[0, 0, 9, 9], [5, 5, 20, 20], [1, 2, 3, 4]]})
            flushed = await conn.round_trip({"op": "flush"})
            estimate = await conn.round_trip(
                {"op": "estimate", "name": "rq", "query": [0, 0, 63, 63]})
            saved = await conn.round_trip(
                {"op": "snapshot", "path": str(snapshot)})
            metrics = await conn.round_trip({"op": "metrics"})
            await conn.close()
            return registered, ingested, flushed, estimate, saved, metrics
        finally:
            await server.close()

    registered, ingested, flushed, estimate, saved, metrics = asyncio.run(main())
    assert registered["ok"] and registered["spec"]["family"] == "range"
    assert ingested["ok"] and ingested["boxes"] == 3
    assert flushed["ok"]
    assert estimate["ok"] and estimate["left_count"] == 3
    assert saved["ok"]
    restored = EstimationService.load(snapshot)
    assert restored.merged_view("rq").count == 3
    text = metrics["text"]
    assert "repro_server_requests_total{op=\"estimate\"} 1" in text
    assert "repro_server_estimate_latency_ms" in text
    assert "repro_server_coalesce_factor" in text
    assert "repro_service_cache_hit_rate" in text


def test_oversized_frame_is_rejected():
    service = make_service()

    async def main():
        server = await start_server(service, max_line_bytes=4096)
        try:
            conn = await Connection.open(server.port)
            conn.writer.write(b"x" * 8192 + b"\n")
            reply = await conn.recv()
            eof = await asyncio.wait_for(conn.reader.readline(), timeout=30)
            await conn.close()
            return reply, eof
        finally:
            await server.close()

    reply, eof = asyncio.run(main())
    assert not reply["ok"] and reply["error_code"] == "frame_too_large"
    assert eof == b""  # NDJSON framing is unrecoverable: server hangs up


class TestCoalescerUnit:
    def test_burst_larger_than_max_batch_drains_leftovers(self):
        service = make_service()
        queries = synthetic_queries(DOMAIN, 11, seed=21)

        async def main():
            coalescer = EstimateCoalescer(lambda: service, max_batch=4,
                                          max_delay=0.05)
            futures = [coalescer.submit("ranges", queries[i:i + 1])
                       for i in range(11)]
            results = await asyncio.gather(*futures)
            await coalescer.drain()
            return results, coalescer.stats

        results, stats = asyncio.run(main())
        expected = [service.estimate("ranges", queries[i]).estimate
                    for i in range(11)]
        assert [r.estimate for r in results] == expected
        assert stats.batches == 3  # 4 + 4 + 3
        assert stats.batched_queries == 11
        assert stats.largest_batch == 4

    def test_engine_failure_propagates_to_every_future(self):
        service = make_service()

        def boom(name, batch, **kwargs):
            raise ServiceError("engine exploded")

        service.estimate_batch = boom

        async def main():
            coalescer = EstimateCoalescer(lambda: service, max_batch=4,
                                          max_delay=0.001)
            futures = [coalescer.submit("ranges",
                                        synthetic_queries(DOMAIN, 1, seed=i))
                       for i in range(3)]
            done = await asyncio.gather(*futures, return_exceptions=True)
            await coalescer.drain()
            return done

        done = asyncio.run(main())
        assert len(done) == 3
        assert all(isinstance(item, ServiceError) for item in done)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ServiceError):
            EstimateCoalescer(lambda: None, max_batch=0)
        with pytest.raises(ServiceError):
            EstimateCoalescer(lambda: None, max_queue=0)
        with pytest.raises(ServiceError):
            ServerConfig(max_batch=0)


def test_estimate_qps_not_capped_by_sample_window():
    """A busy server reports its true rate, not samples/window."""
    from repro.server.metrics import ServerMetrics

    metrics = ServerMetrics(window=64)
    metrics.started_at -= 100.0  # long-lived server...
    for _ in range(64):          # ...whose sample deque wrapped just now
        metrics.record_estimate_latency(0.001)
    # All 64 retained samples are microseconds old; the horizon must clamp
    # to the retained span, not report 64 / 30s ~ 2 qps.
    assert metrics.estimate_qps() > 64 / 30.0 * 10


class TestProtocolUnit:
    def test_decode_rejects_non_objects(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError):
            protocol.decode(b"nonsense\n")
        with pytest.raises(ProtocolError):
            protocol.decode(b"\xff\xfe\n")

    def test_rows_round_trip(self):
        boxes = synthetic_boxes(DOMAIN, 5, seed=1)
        rows = protocol.boxes_to_rows(boxes)
        back = protocol.boxes_from_rows(rows, dimension=2)
        assert protocol.boxes_to_rows(back) == rows

    def test_raise_for_response_maps_error_codes(self):
        from repro.errors import OverloadedError, ServerError

        with pytest.raises(OverloadedError):
            protocol.raise_for_response(
                {"ok": False, "error": "x", "error_code": "overloaded"})
        with pytest.raises(ServerError) as info:
            protocol.raise_for_response(
                {"ok": False, "error": "x", "error_code": "bad_request"})
        assert info.value.code == "bad_request"
        assert protocol.raise_for_response({"ok": True, "op": "ping"})["ok"]
