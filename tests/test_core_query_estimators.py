"""Tests for the epsilon-join, containment-join and range-query estimators
(Sections 6.3, 6.4 and Appendix B.2)."""

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.core.epsilon_join import EpsilonJoinEstimator
from repro.core.join_containment import ContainmentJoinEstimator
from repro.core.range_query import RangeQueryEstimator
from repro.errors import DomainError, EstimationError
from repro.exact.containment import containment_join_count
from repro.exact.epsilon_join import epsilon_join_count
from repro.exact.range_query import range_query_count
from repro.geometry.boxset import BoxSet, PointSet
from repro.geometry.rectangle import Rect

from tests.conftest import random_boxes


def random_points(rng, count, domain_size, dimension):
    return PointSet(rng.integers(0, domain_size, size=(count, dimension)))


class TestEpsilonJoinEstimator:
    def test_unbiased_instance_values(self, rng):
        domain = Domain.square(64, dimension=2)
        left = random_points(rng, 40, 64, 2)
        right = random_points(rng, 40, 64, 2)
        epsilon = 5
        truth = epsilon_join_count(left, right, epsilon)
        estimator = EpsilonJoinEstimator(domain, epsilon, num_instances=5000, seed=1)
        estimator.insert_left(left)
        estimator.insert_right(right)
        values = estimator.instance_values()
        standard_error = values.std() / np.sqrt(values.size)
        assert abs(values.mean() - truth) < 5 * standard_error + 1e-9

    def test_one_dimensional_case(self, rng):
        domain = Domain(128)
        left = random_points(rng, 50, 128, 1)
        right = random_points(rng, 50, 128, 1)
        truth = epsilon_join_count(left, right, 3)
        estimator = EpsilonJoinEstimator(domain, 3, num_instances=4000, seed=3)
        estimator.insert_left(left)
        estimator.insert_right(right)
        values = estimator.instance_values()
        standard_error = values.std() / np.sqrt(values.size)
        assert abs(values.mean() - truth) < 5 * standard_error + 1e-9

    def test_deletes_reconcile(self, rng):
        domain = Domain.square(64, dimension=2)
        keep = random_points(rng, 20, 64, 2)
        transient = random_points(rng, 15, 64, 2)
        right = random_points(rng, 20, 64, 2)
        streaming = EpsilonJoinEstimator(domain, 4, num_instances=64, seed=5)
        streaming.insert_left(keep)
        streaming.insert_left(transient)
        streaming.delete_left(transient)
        streaming.insert_right(right)
        rebuilt = EpsilonJoinEstimator(domain, 4, num_instances=64, seed=5)
        rebuilt.insert_left(keep)
        rebuilt.insert_right(right)
        assert np.allclose(streaming.instance_values(), rebuilt.instance_values())

    def test_negative_epsilon_rejected(self):
        with pytest.raises(DomainError):
            EpsilonJoinEstimator(Domain.square(64, 2), -1, num_instances=4)

    def test_estimate_before_insert_raises(self):
        estimator = EpsilonJoinEstimator(Domain.square(64, 2), 3, num_instances=4)
        with pytest.raises(EstimationError):
            estimator.estimate()

    def test_selectivity(self, rng):
        domain = Domain.square(64, dimension=2)
        left = random_points(rng, 30, 64, 2)
        right = random_points(rng, 40, 64, 2)
        estimator = EpsilonJoinEstimator(domain, 6, num_instances=256, seed=7)
        estimator.insert_left(left)
        estimator.insert_right(right)
        result = estimator.estimate()
        assert result.selectivity == pytest.approx(result.estimate / 1200)


class TestContainmentJoinEstimator:
    def test_unbiased_instance_values(self, rng):
        domain = Domain(64)
        outer = random_boxes(rng, 25, 64, 1, max_extent=30)
        inner = random_boxes(rng, 25, 64, 1, max_extent=6)
        truth = containment_join_count(outer, inner)
        estimator = ContainmentJoinEstimator(domain, num_instances=5000, seed=1)
        estimator.insert_outer(outer)
        estimator.insert_inner(inner)
        values = estimator.instance_values()
        standard_error = values.std() / np.sqrt(values.size)
        assert abs(values.mean() - truth) < 5 * standard_error + 1e-9

    def test_two_dimensional(self, rng):
        domain = Domain.square(32, dimension=2)
        outer = random_boxes(rng, 15, 32, 2, max_extent=20)
        inner = random_boxes(rng, 15, 32, 2, max_extent=4)
        truth = containment_join_count(outer, inner)
        estimator = ContainmentJoinEstimator(domain, num_instances=6000, seed=3)
        estimator.insert_outer(outer)
        estimator.insert_inner(inner)
        values = estimator.instance_values()
        standard_error = values.std() / np.sqrt(values.size)
        assert abs(values.mean() - truth) < 5 * standard_error + 1e-9

    def test_deletes_reconcile(self, rng):
        domain = Domain(64)
        outer = random_boxes(rng, 10, 64, 1)
        inner = random_boxes(rng, 10, 64, 1, max_extent=5)
        transient = random_boxes(rng, 5, 64, 1, max_extent=5)
        streaming = ContainmentJoinEstimator(domain, num_instances=32, seed=5)
        streaming.insert_outer(outer)
        streaming.insert_inner(inner)
        streaming.insert_inner(transient)
        streaming.delete_inner(transient)
        rebuilt = ContainmentJoinEstimator(domain, num_instances=32, seed=5)
        rebuilt.insert_outer(outer)
        rebuilt.insert_inner(inner)
        assert np.allclose(streaming.instance_values(), rebuilt.instance_values())

    def test_counts_and_selectivity(self, rng):
        domain = Domain(64)
        estimator = ContainmentJoinEstimator(domain, num_instances=16, seed=1)
        estimator.insert_outer(random_boxes(rng, 12, 64, 1))
        estimator.insert_inner(random_boxes(rng, 8, 64, 1))
        assert estimator.outer_count == 12
        assert estimator.inner_count == 8
        result = estimator.estimate()
        assert result.selectivity == pytest.approx(result.estimate / 96)

    def test_estimate_before_insert_raises(self):
        estimator = ContainmentJoinEstimator(Domain(64), num_instances=4)
        with pytest.raises(EstimationError):
            estimator.estimate()


class TestRangeQueryEstimator:
    def test_unbiased_instance_values_1d(self, rng):
        domain = Domain(128)
        data = random_boxes(rng, 60, 128, 1)
        query = Rect.interval(30, 90)
        truth = range_query_count(data, query)
        estimator = RangeQueryEstimator(domain, num_instances=5000, seed=1)
        estimator.insert(data)
        values = estimator.instance_values(query)
        standard_error = values.std() / np.sqrt(values.size)
        assert abs(values.mean() - truth) < 5 * standard_error + 1e-9

    def test_unbiased_instance_values_2d(self, rng):
        domain = Domain.square(64, dimension=2)
        data = random_boxes(rng, 40, 64, 2)
        query = Rect.from_bounds((10, 10), (50, 40))
        truth = range_query_count(data, query)
        estimator = RangeQueryEstimator(domain, num_instances=6000, seed=3)
        estimator.insert(data)
        values = estimator.instance_values(query)
        standard_error = values.std() / np.sqrt(values.size)
        assert abs(values.mean() - truth) < 5 * standard_error + 1e-9

    def test_strict_mode_excludes_touching(self, rng):
        domain = Domain(64)
        data = BoxSet.from_intervals([(0, 10), (10, 20), (40, 50)])
        query = Rect.interval(20, 30)
        strict_truth = range_query_count(data, query, closed=False)
        closed_truth = range_query_count(data, query, closed=True)
        assert strict_truth == 0 and closed_truth == 1

        strict = RangeQueryEstimator(domain, num_instances=4000, seed=5, strict=True)
        strict.insert(data)
        closed = RangeQueryEstimator(domain, num_instances=4000, seed=5, strict=False)
        closed.insert(data)
        strict_values = strict.instance_values(query)
        closed_values = closed.instance_values(query)
        strict_se = strict_values.std() / np.sqrt(strict_values.size)
        closed_se = closed_values.std() / np.sqrt(closed_values.size)
        assert abs(strict_values.mean() - strict_truth) < 5 * strict_se + 1e-9
        assert abs(closed_values.mean() - closed_truth) < 5 * closed_se + 1e-9

    def test_deletes_reconcile(self, rng):
        domain = Domain(128)
        keep = random_boxes(rng, 30, 128, 1)
        transient = random_boxes(rng, 20, 128, 1)
        streaming = RangeQueryEstimator(domain, num_instances=64, seed=7)
        streaming.insert(keep)
        streaming.insert(transient)
        streaming.delete(transient)
        rebuilt = RangeQueryEstimator(domain, num_instances=64, seed=7)
        rebuilt.insert(keep)
        query = Rect.interval(10, 100)
        assert np.allclose(streaming.instance_values(query), rebuilt.instance_values(query))
        assert streaming.count == 30

    def test_selectivity(self, rng):
        domain = Domain(128)
        data = random_boxes(rng, 50, 128, 1)
        estimator = RangeQueryEstimator(domain, num_instances=128, seed=9)
        estimator.insert(data)
        result = estimator.estimate(Rect.interval(0, 127))
        assert result.selectivity == pytest.approx(result.estimate / 50)

    def test_query_validation(self, rng):
        domain = Domain(128)
        estimator = RangeQueryEstimator(domain, num_instances=8, seed=1)
        estimator.insert(random_boxes(rng, 10, 128, 1))
        with pytest.raises(Exception):
            estimator.estimate(Rect.from_bounds((0, 0), (5, 5)))

    def test_estimate_before_insert_raises(self):
        estimator = RangeQueryEstimator(Domain(64), num_instances=4)
        with pytest.raises(EstimationError):
            estimator.estimate(Rect.interval(0, 10))
