"""Tests for the mini spatial query engine."""

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.data import synthetic
from repro.engine.catalog import Catalog
from repro.engine.cost import CostModel
from repro.engine.operators import (
    IndexNestedLoopJoin,
    NestedLoopJoin,
    PlaneSweepJoin,
    RangeScan,
    RTreeJoin,
)
from repro.engine.optimizer import Optimizer
from repro.engine.query import JoinQuery, RangeQuery
from repro.engine.relation import SpatialRelation
from repro.engine.synopses import SynopsisManager
from repro.errors import EngineError
from repro.exact.range_query import range_query_count
from repro.exact.rectangle_join import brute_force_join_count
from repro.geometry.boxset import BoxSet
from repro.geometry.rectangle import Rect

from tests.conftest import random_boxes


@pytest.fixture
def engine_setup(rng):
    domain = Domain.square(512, dimension=2)
    catalog = Catalog(domain)
    roads = catalog.create("roads", boxes=synthetic.generate_rectangles(300, domain, rng=rng))
    lakes = catalog.create("lakes", boxes=synthetic.generate_rectangles(200, domain, rng=rng))
    parks = catalog.create("parks", boxes=synthetic.generate_rectangles(120, domain,
                                                                        skew=0.8, rng=rng))
    synopses = SynopsisManager(domain.with_max_level(4), num_instances=128, seed=3)
    return domain, catalog, synopses, (roads, lakes, parks)


class TestRelation:
    def test_insert_and_cardinality(self, rng, domain_2d):
        relation = SpatialRelation("items", domain_2d)
        relation.insert(random_boxes(rng, 25, 256, 2))
        assert relation.cardinality == 25

    def test_delete_removes_single_occurrence(self, rng, domain_2d):
        data = random_boxes(rng, 10, 256, 2)
        relation = SpatialRelation("items", domain_2d, boxes=data)
        removed = relation.delete(data[:3])
        assert removed == 3
        assert len(relation) == 7

    def test_delete_missing_object_raises(self, rng, domain_2d):
        relation = SpatialRelation("items", domain_2d, boxes=random_boxes(rng, 5, 256, 2))
        missing = BoxSet(np.array([[1, 1]]), np.array([[2, 2]]))
        with pytest.raises(EngineError):
            relation.delete(missing)

    def test_listeners_receive_mutations(self, rng, domain_2d):
        events = []

        class Recorder:
            def on_insert(self, relation, boxes):
                events.append(("insert", len(boxes)))

            def on_delete(self, relation, boxes):
                events.append(("delete", len(boxes)))

        relation = SpatialRelation("items", domain_2d)
        relation.add_listener(Recorder())
        data = random_boxes(rng, 4, 256, 2)
        relation.insert(data)
        relation.delete(data[:2])
        assert events == [("insert", 4), ("delete", 2)]

    def test_out_of_domain_insert_rejected(self, domain_2d):
        relation = SpatialRelation("items", domain_2d)
        with pytest.raises(Exception):
            relation.insert(BoxSet(np.array([[0, 0]]), np.array([[999, 1]])))

    def test_empty_name_rejected(self, domain_2d):
        with pytest.raises(EngineError):
            SpatialRelation("", domain_2d)


class TestCatalog:
    def test_create_get_drop(self, domain_2d):
        catalog = Catalog(domain_2d)
        catalog.create("a")
        assert "a" in catalog
        assert catalog.get("a").name == "a"
        catalog.drop("a")
        assert "a" not in catalog

    def test_duplicate_name_rejected(self, domain_2d):
        catalog = Catalog(domain_2d)
        catalog.create("a")
        with pytest.raises(EngineError):
            catalog.create("a")

    def test_missing_relation(self, domain_2d):
        catalog = Catalog(domain_2d)
        with pytest.raises(EngineError):
            catalog.get("missing")
        with pytest.raises(EngineError):
            catalog.drop("missing")

    def test_names_and_iteration(self, domain_2d):
        catalog = Catalog(domain_2d)
        catalog.create("b")
        catalog.create("a")
        assert catalog.names() == ["a", "b"]
        assert len(catalog) == 2
        assert {relation.name for relation in catalog} == {"a", "b"}


class TestOperators:
    def test_all_join_operators_agree(self, engine_setup):
        _, catalog, _, (roads, lakes, _) = engine_setup
        expected = brute_force_join_count(roads.boxes(), lakes.boxes())
        for operator_cls in (NestedLoopJoin, PlaneSweepJoin, IndexNestedLoopJoin, RTreeJoin):
            result = operator_cls(roads, lakes).execute()
            assert result.cardinality == expected, operator_cls.name

    def test_closed_semantics(self, engine_setup):
        _, catalog, _, (roads, lakes, _) = engine_setup
        strict = NestedLoopJoin(roads, lakes).execute().cardinality
        closed = NestedLoopJoin(roads, lakes, closed=True).execute().cardinality
        assert closed >= strict

    def test_nested_loop_collect_pairs(self, engine_setup):
        _, _, _, (roads, lakes, _) = engine_setup
        result = NestedLoopJoin(roads, lakes).execute(collect_pairs=True)
        assert len(result.pairs) == result.cardinality

    def test_empty_relation_join(self, engine_setup, domain_2d):
        _, catalog, _, (roads, _, _) = engine_setup
        empty = SpatialRelation("empty", roads.domain)
        assert NestedLoopJoin(roads, empty).execute().cardinality == 0

    def test_range_scan(self, engine_setup):
        _, _, _, (roads, _, _) = engine_setup
        window = Rect.from_bounds((100, 100), (300, 260))
        result = RangeScan(roads, window).execute()
        assert result.cardinality == range_query_count(roads.boxes(), window)

    def test_dimension_mismatch_rejected(self, engine_setup):
        domain, *_ = engine_setup
        one_d = SpatialRelation("one", Domain(64))
        two_d = SpatialRelation("two", Domain.square(64, 2))
        with pytest.raises(EngineError):
            NestedLoopJoin(one_d, two_d)


class TestSynopsisManager:
    def test_join_sketch_tracks_mutations(self, engine_setup, rng):
        domain, catalog, synopses, (roads, lakes, _) = engine_setup
        sketch = synopses.join_sketch(roads, lakes)
        assert sketch.left_count == len(roads)
        extra = random_boxes(rng, 20, 512, 2)
        roads.insert(extra)
        assert sketch.left_count == len(roads)
        roads.delete(extra)
        assert sketch.left_count == len(roads)

    def test_join_sketch_estimate_is_plausible(self, engine_setup):
        _, catalog, synopses, (roads, lakes, _) = engine_setup
        truth = brute_force_join_count(roads.boxes(), lakes.boxes())
        estimate = synopses.estimated_join_cardinality(roads, lakes)
        assert estimate >= 0
        # 128 instances on small data: just require the right order of magnitude.
        assert estimate <= max(20 * truth, len(roads) * len(lakes))

    def test_join_sketch_requires_distinct_relations(self, engine_setup):
        _, _, synopses, (roads, _, _) = engine_setup
        with pytest.raises(EngineError):
            synopses.join_sketch(roads, roads)

    def test_range_sketch_tracks_relation(self, engine_setup, rng):
        _, _, synopses, (roads, _, _) = engine_setup
        sketch = synopses.range_sketch(roads)
        before = sketch.count
        roads.insert(random_boxes(rng, 10, 512, 2))
        assert sketch.count == before + 10

    def test_histogram_synopsis(self, engine_setup, rng):
        _, _, synopses, (roads, lakes, _) = engine_setup
        gh_roads = synopses.histogram(roads, "geometric", level=3)
        gh_lakes = synopses.histogram(lakes, "geometric", level=3)
        truth = brute_force_join_count(roads.boxes(), lakes.boxes())
        assert gh_roads.estimate_join(gh_lakes) == pytest.approx(truth, rel=0.8)

    def test_unknown_histogram_kind(self, engine_setup):
        _, _, synopses, (roads, _, _) = engine_setup
        with pytest.raises(EngineError):
            synopses.histogram(roads, "wavelet")


class TestCostModel:
    def test_nested_loop_is_quadratic(self):
        model = CostModel()
        assert model.nested_loop_join(100, 200) == 20_000

    def test_index_join_cheaper_than_nested_loop_for_selective_output(self):
        model = CostModel()
        nested = model.nested_loop_join(10_000, 10_000)
        indexed = model.index_nested_loop_join(10_000, 10_000, estimated_output=1000)
        assert indexed < nested

    def test_costs_are_non_negative(self):
        model = CostModel()
        assert model.plane_sweep_join(0, 0, 0) == 0.0
        assert model.index_nested_loop_join(0, 10, 5) == 0.0
        assert model.rtree_join(10, 10, 0) > 0.0
        assert model.range_scan(42) == 42.0


class TestOptimizer:
    def test_pair_selectivity_in_unit_range(self, engine_setup):
        _, catalog, synopses, (roads, lakes, _) = engine_setup
        optimizer = Optimizer(catalog, synopses)
        selectivity = optimizer.estimated_pair_selectivity(roads, lakes)
        assert 0.0 <= selectivity <= 1.0

    def test_plan_join_enumerates_orders(self, engine_setup):
        _, catalog, synopses, _ = engine_setup
        optimizer = Optimizer(catalog, synopses)
        plan = optimizer.plan_join(JoinQuery(relations=("roads", "lakes", "parks")))
        assert set(plan.order) == {"roads", "lakes", "parks"}
        assert len(plan.steps) == 2
        assert plan.estimated_cost > 0

    def test_execute_plan_result_is_order_independent(self, engine_setup):
        import itertools

        _, catalog, synopses, _ = engine_setup
        optimizer = Optimizer(catalog, synopses)
        cardinalities = set()
        for order in itertools.permutations(("roads", "lakes", "parks")):
            plan = optimizer._cost_order(tuple(order))
            cardinalities.add(optimizer.execute_plan(plan).cardinality)
        assert len(cardinalities) == 1

    def test_binary_join_execution_matches_truth(self, engine_setup):
        _, catalog, synopses, (roads, lakes, _) = engine_setup
        optimizer = Optimizer(catalog, synopses)
        truth = brute_force_join_count(roads.boxes(), lakes.boxes())
        result = optimizer.execute_binary_join("roads", "lakes")
        assert result.cardinality == truth

    def test_binary_join_with_named_operator(self, engine_setup):
        _, catalog, synopses, (roads, lakes, _) = engine_setup
        optimizer = Optimizer(catalog, synopses)
        result = optimizer.execute_binary_join("roads", "lakes", operator="rtree_join")
        assert result.operator == "rtree_join"

    def test_unknown_operator_rejected(self, engine_setup):
        _, catalog, synopses, _ = engine_setup
        optimizer = Optimizer(catalog, synopses)
        with pytest.raises(EngineError):
            optimizer.execute_binary_join("roads", "lakes", operator="hash_join")

    def test_plan_and_execute(self, engine_setup):
        _, catalog, synopses, _ = engine_setup
        optimizer = Optimizer(catalog, synopses)
        execution = optimizer.plan_and_execute(JoinQuery(relations=("roads", "parks")))
        truth = brute_force_join_count(catalog.get("roads").boxes(),
                                       catalog.get("parks").boxes())
        assert execution.cardinality == truth

    def test_join_query_validation(self):
        with pytest.raises(ValueError):
            JoinQuery(relations=("solo",))
        with pytest.raises(ValueError):
            JoinQuery(relations=("a", "a"))

    def test_range_query_dataclass(self):
        query = RangeQuery(relation="roads", window=Rect.from_bounds((0, 0), (10, 10)))
        assert query.closed
