"""Tests for repro.core.domain (Domain, Quantizer, EndpointTransform)."""

import numpy as np
import pytest

from repro.core.domain import Domain, EndpointTransform, Quantizer
from repro.errors import DimensionalityError, DomainError
from repro.exact.rectangle_join import brute_force_join_count
from repro.geometry.boxset import BoxSet

from tests.conftest import random_boxes


class TestDomain:
    def test_single_size_becomes_one_dimension(self):
        domain = Domain(100)
        assert domain.dimension == 1
        assert domain.sizes == (128,)
        assert domain.requested_sizes == (100,)

    def test_square(self):
        domain = Domain.square(1000, dimension=3)
        assert domain.dimension == 3
        assert domain.sizes == (1024, 1024, 1024)

    def test_max_levels_broadcast(self):
        domain = Domain((64, 128), max_levels=2)
        assert domain.dyadic(0).max_level == 2
        assert domain.dyadic(1).max_level == 2

    def test_max_levels_per_dimension(self):
        domain = Domain((64, 128), max_levels=(1, 3))
        assert domain.dyadic(0).max_level == 1
        assert domain.dyadic(1).max_level == 3

    def test_max_levels_length_mismatch(self):
        with pytest.raises(DimensionalityError):
            Domain((64, 128), max_levels=(1, 2, 3))

    def test_with_max_level(self):
        domain = Domain.square(256, dimension=2).with_max_level(4)
        assert all(d.max_level == 4 for d in domain.dyadics)

    def test_for_boxes(self):
        boxes = BoxSet(np.array([[0, 5]]), np.array([[90, 200]]))
        domain = Domain.for_boxes(boxes)
        assert domain.requested_sizes == (91, 201)
        assert domain.contains(boxes)

    def test_for_boxes_rejects_negative(self):
        boxes = BoxSet(np.array([[-1, 0]]), np.array([[5, 5]]))
        with pytest.raises(DomainError):
            Domain.for_boxes(boxes)

    def test_contains(self):
        domain = Domain.square(64, dimension=2)
        inside = BoxSet(np.array([[0, 0]]), np.array([[63, 63]]))
        outside = BoxSet(np.array([[0, 0]]), np.array([[64, 10]]))
        assert domain.contains(inside)
        assert not domain.contains(outside)

    def test_validate_boxes_raises(self):
        domain = Domain.square(64, dimension=2)
        outside = BoxSet(np.array([[0, 0]]), np.array([[100, 10]]))
        with pytest.raises(DomainError):
            domain.validate_boxes(outside)
        with pytest.raises(DimensionalityError):
            domain.validate_boxes(BoxSet(np.array([[0]]), np.array([[1]])))


class TestQuantizer:
    def test_domain_shape(self):
        quantizer = Quantizer((0.0, 0.0), (1.0, 1.0), resolution=256)
        assert quantizer.domain().sizes == (256, 256)

    def test_points_map_into_range(self, rng):
        quantizer = Quantizer((-10.0, 0.0), (10.0, 5.0), resolution=128)
        coords = rng.uniform([-10, 0], [10, 5], size=(200, 2))
        points = quantizer.quantize_points(coords)
        assert points.coords.min() >= 0
        assert points.coords.max() <= 127

    def test_boxes_keep_order(self):
        quantizer = Quantizer((0.0,), (1.0,), resolution=64)
        boxes = quantizer.quantize_boxes([[0.1], [0.5]], [[0.2], [0.9]])
        assert np.all(boxes.lows <= boxes.highs)
        assert boxes.lows[0, 0] < boxes.lows[1, 0]

    def test_invalid_bounds(self):
        with pytest.raises(DomainError):
            Quantizer((1.0,), (0.0,), resolution=16)

    def test_invalid_resolution(self):
        with pytest.raises(DomainError):
            Quantizer((0.0,), (1.0,), resolution=1)

    def test_dimension_mismatch(self):
        quantizer = Quantizer((0.0, 0.0), (1.0, 1.0), resolution=16)
        with pytest.raises(DimensionalityError):
            quantizer.quantize_points([[0.5]])


class TestEndpointTransform:
    def test_expanded_domain_is_three_times_larger(self):
        transform = EndpointTransform(Domain(100))
        assert transform.expanded_domain.requested_sizes == (300,)

    def test_left_and_right_transforms_never_share_endpoints(self, rng):
        domain = Domain.square(64, dimension=2)
        transform = EndpointTransform(domain)
        left = random_boxes(rng, 50, 64, 2)
        right = random_boxes(rng, 50, 64, 2)
        scaled_left = transform.transform_left(left)
        shrunk_right = transform.transform_right(right)
        left_coords = set(scaled_left.lows.ravel()) | set(scaled_left.highs.ravel())
        right_coords = set(shrunk_right.lows.ravel()) | set(shrunk_right.highs.ravel())
        assert not left_coords & right_coords

    def test_transform_preserves_join_cardinality(self, rng):
        domain = Domain.square(64, dimension=2)
        transform = EndpointTransform(domain)
        for _ in range(10):
            left = random_boxes(rng, 30, 64, 2)
            right = random_boxes(rng, 30, 64, 2)
            original = brute_force_join_count(left, right)
            transformed = brute_force_join_count(transform.transform_left(left),
                                                 transform.transform_right(right))
            assert original == transformed

    def test_transformed_boxes_fit_in_expanded_domain(self, rng):
        domain = Domain.square(64, dimension=2)
        transform = EndpointTransform(domain)
        boxes = random_boxes(rng, 40, 64, 2)
        assert transform.expanded_domain.contains(transform.transform_left(boxes))
        assert transform.expanded_domain.contains(transform.transform_right(boxes))

    def test_query_transform_matches_left(self, rng):
        domain = Domain(64)
        transform = EndpointTransform(domain)
        boxes = random_boxes(rng, 5, 64, 1)
        assert np.array_equal(transform.transform_query(boxes).lows,
                              transform.transform_left(boxes).lows)
