"""Tests for the atomic sketch banks (Sections 3.1-3.2)."""

import numpy as np
import pytest

from repro.core.atomic import JOIN_COMPLEMENT, Letter, SketchBank, all_words, complement_word
from repro.core.domain import Domain
from repro.errors import DimensionalityError, SketchConfigError
from repro.geometry.boxset import BoxSet

from tests.conftest import random_boxes
from tests.helpers import expected_counter_product


IE_1D = [(Letter.INTERVAL,), (Letter.ENDPOINTS,)]
IE_2D = all_words([Letter.INTERVAL, Letter.ENDPOINTS], 2)


class TestWords:
    def test_all_words_count(self):
        assert len(all_words([Letter.INTERVAL, Letter.ENDPOINTS], 3)) == 8

    def test_complement_word(self):
        word = (Letter.INTERVAL, Letter.ENDPOINTS, Letter.LOWER_LEAF)
        assert complement_word(word) == (Letter.ENDPOINTS, Letter.INTERVAL, Letter.UPPER_LEAF)

    def test_complement_is_involution_on_ie(self):
        for word in IE_2D:
            assert complement_word(complement_word(word)) == word

    def test_every_letter_has_a_complement(self):
        assert set(JOIN_COMPLEMENT) == set(Letter)


class TestConstruction:
    def test_basic(self, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=8, seed=1)
        assert bank.num_instances == 8
        assert bank.dimension == 1
        assert set(bank.words) == set(IE_1D)

    def test_zero_instances_rejected(self, domain_1d):
        with pytest.raises(SketchConfigError):
            SketchBank(domain_1d, IE_1D, num_instances=0)

    def test_empty_words_rejected(self, domain_1d):
        with pytest.raises(SketchConfigError):
            SketchBank(domain_1d, [], num_instances=4)

    def test_word_dimension_mismatch(self, domain_2d):
        with pytest.raises(DimensionalityError):
            SketchBank(domain_2d, IE_1D, num_instances=4)

    def test_duplicate_words_rejected(self, domain_1d):
        with pytest.raises(SketchConfigError):
            SketchBank(domain_1d, [IE_1D[0], IE_1D[0]], num_instances=4)

    def test_companion_shares_xi_families(self, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=4, seed=3)
        other = bank.companion()
        assert other.xi_banks is bank.xi_banks or all(
            a is b for a, b in zip(other.xi_banks, bank.xi_banks))

    def test_counters_start_at_zero(self, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=4, seed=3)
        for word in bank.words:
            assert np.all(bank.counter(word) == 0)


class TestUpdates:
    def test_insert_then_delete_restores_zero(self, domain_1d, rng):
        bank = SketchBank(domain_1d, IE_1D, num_instances=16, seed=5)
        boxes = random_boxes(rng, 30, 256, 1)
        bank.insert(boxes)
        assert any(np.any(bank.counter(word) != 0) for word in bank.words)
        bank.delete(boxes)
        for word in bank.words:
            assert np.allclose(bank.counter(word), 0.0)

    def test_insert_is_order_independent(self, domain_1d, rng):
        boxes = random_boxes(rng, 20, 256, 1)
        bank_a = SketchBank(domain_1d, IE_1D, num_instances=8, seed=7)
        bank_b = SketchBank(domain_1d, IE_1D, num_instances=8, seed=7)
        bank_a.insert(boxes)
        order = rng.permutation(len(boxes))
        bank_b.insert(boxes[order])
        for word in IE_1D:
            assert np.allclose(bank_a.counter(word), bank_b.counter(word))

    def test_batched_and_single_inserts_agree(self, domain_2d, rng):
        boxes = random_boxes(rng, 15, 256, 2)
        bank_a = SketchBank(domain_2d, IE_2D, num_instances=8, seed=9)
        bank_b = SketchBank(domain_2d, IE_2D, num_instances=8, seed=9)
        bank_a.insert(boxes)
        for i in range(len(boxes)):
            bank_b.insert(boxes[i])
        for word in IE_2D:
            assert np.allclose(bank_a.counter(word), bank_b.counter(word))

    def test_out_of_domain_boxes_rejected(self, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=4, seed=1)
        outside = BoxSet(np.array([[0]]), np.array([[400]]))
        with pytest.raises(Exception):
            bank.insert(outside)

    def test_dimension_mismatch_rejected(self, domain_1d, rng):
        bank = SketchBank(domain_1d, IE_1D, num_instances=4, seed=1)
        with pytest.raises(DimensionalityError):
            bank.insert(random_boxes(rng, 5, 100, 2))

    def test_empty_insert_is_noop(self, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=4, seed=1)
        bank.insert(BoxSet.empty(1))
        assert bank.num_updates == 0

    def test_update_accounting_scales_with_weight(self, domain_1d, rng):
        """num_updates is the net *weighted* box count, not the raw count.

        Historically any non-unit weight bumped the counter by +count
        regardless of magnitude or sign; the accounting now follows the
        linear-projection semantics (weight w == w copies of every box).
        """
        bank = SketchBank(domain_1d, IE_1D, num_instances=4, seed=1)
        boxes = random_boxes(rng, 3, 256, 1)
        bank.insert(boxes)
        assert bank.num_updates == 3
        assert isinstance(bank.num_updates, int)  # integral stays int
        bank.insert(boxes, weight=2.0)
        assert bank.num_updates == 9  # 3 + 2 * 3
        bank.insert(boxes, weight=-2.0)
        assert bank.num_updates == 3
        bank.insert(boxes, weight=0.5)
        assert bank.num_updates == 4.5  # fractional weights account exactly
        bank.delete(boxes)
        assert bank.num_updates == 1.5
        # The weighted total round-trips through snapshots.
        clone = SketchBank(domain_1d, IE_1D, num_instances=4, seed=1)
        clone.load_state_dict(bank.state_dict())
        assert clone.num_updates == 1.5

    def test_weighted_insert_equals_repeated_inserts(self, domain_1d, rng):
        boxes = random_boxes(rng, 5, 256, 1)
        weighted = SketchBank(domain_1d, IE_1D, num_instances=4, seed=2)
        repeated = SketchBank(domain_1d, IE_1D, num_instances=4, seed=2)
        weighted.insert(boxes, weight=2.0)
        repeated.insert(boxes)
        repeated.insert(boxes)
        assert weighted.num_updates == repeated.num_updates == 10
        for word in IE_1D:
            assert np.allclose(weighted.counter(word), repeated.counter(word))

    def test_letter_boxes_override(self, domain_1d, rng):
        words = [(Letter.LOWER_LEAF,), (Letter.INTERVAL,)]
        boxes = random_boxes(rng, 10, 200, 1)
        alt = random_boxes(rng, 10, 200, 1)
        bank = SketchBank(domain_1d, words, num_instances=8, seed=11)
        bank.insert(boxes, letter_boxes={Letter.LOWER_LEAF: alt})
        # The interval counter should match a plain insert of `boxes` ...
        reference = SketchBank(domain_1d, words, num_instances=8, seed=11)
        reference.insert(boxes)
        assert not np.allclose(bank.counter((Letter.LOWER_LEAF,)),
                               reference.counter((Letter.LOWER_LEAF,)))
        assert np.allclose(bank.counter((Letter.INTERVAL,)),
                           reference.counter((Letter.INTERVAL,)))


class TestCounterSemantics:
    """Counter values equal the sum over boxes of products of cover sign sums."""

    def test_interval_counter_matches_manual_computation(self, rng):
        domain = Domain(64)
        boxes = random_boxes(rng, 12, 64, 1)
        bank = SketchBank(domain, IE_1D, num_instances=3, seed=13)
        signs_by_instance = [bank.xi_banks[0].signs_for_family(k, np.arange(127))
                             for k in range(3)]
        expected = np.zeros(3)
        dyadic = domain.dyadic(0)
        for i in range(len(boxes)):
            cover = dyadic.cover(int(boxes.lows[i, 0]), int(boxes.highs[i, 0]))
            for k in range(3):
                expected[k] += sum(signs_by_instance[k][node] for node in cover)
        bank.insert(boxes)
        assert np.allclose(bank.counter((Letter.INTERVAL,)), expected)

    def test_endpoint_counter_matches_manual_computation(self, rng):
        domain = Domain(64)
        boxes = random_boxes(rng, 12, 64, 1)
        bank = SketchBank(domain, IE_1D, num_instances=2, seed=17)
        signs = [bank.xi_banks[0].signs_for_family(k, np.arange(127)) for k in range(2)]
        expected = np.zeros(2)
        dyadic = domain.dyadic(0)
        for i in range(len(boxes)):
            covers = dyadic.point_cover(int(boxes.lows[i, 0])) + \
                dyadic.point_cover(int(boxes.highs[i, 0]))
            for k in range(2):
                expected[k] += sum(signs[k][node] for node in covers)
        bank.insert(boxes)
        assert np.allclose(bank.counter((Letter.ENDPOINTS,)), expected)

    def test_two_dimensional_counter_matches_manual_computation(self, rng):
        domain = Domain.square(32, dimension=2)
        boxes = random_boxes(rng, 8, 32, 2)
        word = (Letter.INTERVAL, Letter.ENDPOINTS)
        bank = SketchBank(domain, [word], num_instances=2, seed=19)
        expected = np.zeros(2)
        for k in range(2):
            for i in range(len(boxes)):
                total = 1.0
                for dim, letter in enumerate(word):
                    dyadic = domain.dyadic(dim)
                    signs = bank.xi_banks[dim].signs_for_family(
                        k, np.arange(dyadic.num_nodes))
                    if letter is Letter.INTERVAL:
                        nodes = dyadic.cover(int(boxes.lows[i, dim]), int(boxes.highs[i, dim]))
                    else:
                        nodes = dyadic.point_cover(int(boxes.lows[i, dim])) + \
                            dyadic.point_cover(int(boxes.highs[i, dim]))
                    total *= sum(signs[node] for node in nodes)
                expected[k] += total
        bank.insert(boxes)
        assert np.allclose(bank.counter(word), expected)

    def test_self_product_expectation_matches_cover_counts(self, rng):
        """E[X_w * Y_w'] over shared xi families equals the cover-count inner product."""
        domain = Domain(64)
        left = random_boxes(rng, 10, 64, 1)
        right = random_boxes(rng, 10, 64, 1)
        num_instances = 6000
        left_bank = SketchBank(domain, IE_1D, num_instances=num_instances, seed=21)
        right_bank = left_bank.companion()
        left_bank.insert(left)
        right_bank.insert(right)
        product = left_bank.counter((Letter.INTERVAL,)) * right_bank.counter((Letter.ENDPOINTS,))
        expected = expected_counter_product(left, right, domain,
                                            (Letter.INTERVAL,), (Letter.ENDPOINTS,))
        standard_error = product.std() / np.sqrt(num_instances)
        assert abs(product.mean() - expected) < 5 * standard_error + 1e-9


class TestEvaluate:
    def test_evaluate_matches_insert_contribution(self, rng):
        domain = Domain.square(64, dimension=2)
        word = (Letter.INTERVAL, Letter.UPPER_POINT)
        bank = SketchBank(domain, [word], num_instances=10, seed=23)
        box = random_boxes(rng, 1, 64, 2)
        values = bank.evaluate(word, box)
        bank.insert(box)
        assert np.allclose(bank.counter(word), values)

    def test_evaluate_requires_single_box(self, domain_2d, rng):
        bank = SketchBank(domain_2d, IE_2D, num_instances=4, seed=1)
        with pytest.raises(SketchConfigError):
            bank.evaluate(IE_2D[0], random_boxes(rng, 2, 256, 2))
