"""Tests for the spatial-join estimators (Sections 4, 6.1, Appendices B/C).

Two layers of checks:

* *Exact expectation* — using the closed-form expectation helper from
  ``tests.helpers`` the estimator's E[Z] is computed without sampling and
  compared with the true join cardinality.  This verifies covers,
  combination coefficients and endpoint handling exactly.
* *Statistical behaviour* — with many instances the boosted estimate must
  land near the truth; insert/delete streams must behave like the final
  dataset.
"""

import numpy as np
import pytest

from repro.core.boosting import BoostingPlan
from repro.core.domain import Domain
from repro.core.join_extended import CommonEndpointJoinEstimator, ExtendedOverlapJoinEstimator
from repro.core.join_hyperrect import SpatialJoinEstimator
from repro.core.join_interval import IntervalJoinEstimator
from repro.core.join_rect import RectangleJoinEstimator
from repro.errors import DimensionalityError, EstimationError, SketchConfigError
from repro.exact.interval_join import interval_join_count
from repro.exact.rectangle_join import brute_force_join_count
from repro.geometry.boxset import BoxSet

from tests.conftest import random_boxes
from tests.helpers import expected_estimator_value


def snapped_boxes(rng, count, domain_size, dimension, pitch=8):
    """Boxes whose coordinates snap to a coarse grid (many shared endpoints)."""
    boxes = random_boxes(rng, count, domain_size, dimension)
    lows = (boxes.lows // pitch) * pitch
    highs = np.maximum(((boxes.highs // pitch) + 1) * pitch - 1, lows + 1)
    highs = np.minimum(highs, domain_size - 1)
    return BoxSet(lows, highs)


class TestExactExpectation1D:
    """E[Z] equals the true join cardinality (no sampling involved)."""

    @pytest.mark.parametrize("policy", ["transform", "explicit"])
    def test_random_intervals(self, rng, policy):
        domain = Domain(64)
        for _ in range(5):
            left = random_boxes(rng, 15, 64, 1)
            right = random_boxes(rng, 15, 64, 1)
            estimator = IntervalJoinEstimator(domain, num_instances=1, seed=0,
                                              endpoint_policy=policy)
            truth = interval_join_count(left, right)
            assert expected_estimator_value(estimator, left, right) == pytest.approx(truth)

    @pytest.mark.parametrize("policy", ["transform", "explicit"])
    def test_shared_endpoints(self, rng, policy):
        domain = Domain(64)
        for _ in range(5):
            left = snapped_boxes(rng, 12, 64, 1)
            right = snapped_boxes(rng, 12, 64, 1)
            estimator = IntervalJoinEstimator(domain, num_instances=1, seed=0,
                                              endpoint_policy=policy)
            truth = interval_join_count(left, right)
            assert expected_estimator_value(estimator, left, right) == pytest.approx(truth)

    def test_assume_distinct_correct_without_shared_endpoints(self):
        domain = Domain(64)
        left = BoxSet.from_intervals([(0, 10), (20, 30), (40, 50)])
        right = BoxSet.from_intervals([(5, 15), (25, 45), (55, 60)])
        estimator = IntervalJoinEstimator(domain, num_instances=1, seed=0,
                                          endpoint_policy="assume_distinct")
        truth = interval_join_count(left, right)
        assert expected_estimator_value(estimator, left, right) == pytest.approx(truth)

    def test_assume_distinct_biased_with_shared_endpoints(self):
        domain = Domain(64)
        left = BoxSet.from_intervals([(0, 10)])
        right = BoxSet.from_intervals([(10, 20)])  # touches at 10: not a join pair
        estimator = IntervalJoinEstimator(domain, num_instances=1, seed=0,
                                          endpoint_policy="assume_distinct")
        assert expected_estimator_value(estimator, left, right) > 0.5

    @pytest.mark.parametrize("max_level", [0, 2, None])
    def test_max_level_does_not_change_expectation(self, rng, max_level):
        domain = Domain(64, max_levels=max_level)
        left = random_boxes(rng, 10, 64, 1)
        right = random_boxes(rng, 10, 64, 1)
        estimator = IntervalJoinEstimator(domain, num_instances=1, seed=0)
        truth = interval_join_count(left, right)
        assert expected_estimator_value(estimator, left, right) == pytest.approx(truth)


class TestExactExpectation2D:
    @pytest.mark.parametrize("policy", ["transform", "explicit"])
    def test_random_rectangles(self, rng, policy):
        domain = Domain.square(32, dimension=2)
        for _ in range(4):
            left = random_boxes(rng, 10, 32, 2)
            right = random_boxes(rng, 10, 32, 2)
            estimator = RectangleJoinEstimator(domain, num_instances=1, seed=0,
                                               endpoint_policy=policy)
            truth = brute_force_join_count(left, right)
            assert expected_estimator_value(estimator, left, right) == pytest.approx(truth)

    def test_shared_endpoints_2d(self, rng):
        domain = Domain.square(32, dimension=2)
        left = snapped_boxes(rng, 8, 32, 2, pitch=4)
        right = snapped_boxes(rng, 8, 32, 2, pitch=4)
        estimator = RectangleJoinEstimator(domain, num_instances=1, seed=0,
                                           endpoint_policy="transform")
        truth = brute_force_join_count(left, right)
        assert expected_estimator_value(estimator, left, right) == pytest.approx(truth)


class TestExactExpectation3D:
    def test_three_dimensional_join(self, rng):
        domain = Domain.square(16, dimension=3)
        left = random_boxes(rng, 8, 16, 3)
        right = random_boxes(rng, 8, 16, 3)
        estimator = SpatialJoinEstimator(domain, num_instances=1, seed=0)
        truth = brute_force_join_count(left, right)
        assert expected_estimator_value(estimator, left, right) == pytest.approx(truth)


class TestExtendedOverlap:
    def test_expectation_counts_touching_pairs(self, rng):
        domain = Domain(64)
        for _ in range(5):
            left = snapped_boxes(rng, 10, 64, 1)
            right = snapped_boxes(rng, 10, 64, 1)
            estimator = ExtendedOverlapJoinEstimator(domain, num_instances=1, seed=0)
            truth = interval_join_count(left, right, closed=True)
            assert expected_estimator_value(estimator, left, right) == pytest.approx(truth)

    def test_expectation_counts_touching_pairs_2d(self, rng):
        domain = Domain.square(32, dimension=2)
        left = snapped_boxes(rng, 8, 32, 2, pitch=4)
        right = snapped_boxes(rng, 8, 32, 2, pitch=4)
        estimator = ExtendedOverlapJoinEstimator(domain, num_instances=1, seed=0)
        truth = brute_force_join_count(left, right, closed=True)
        assert expected_estimator_value(estimator, left, right) == pytest.approx(truth)

    def test_statistical_estimate(self, rng):
        domain = Domain(128)
        left = snapped_boxes(rng, 60, 128, 1)
        right = snapped_boxes(rng, 60, 128, 1)
        truth = interval_join_count(left, right, closed=True)
        estimator = ExtendedOverlapJoinEstimator(domain.with_max_level(4), 3000, seed=2)
        estimator.insert_left(left)
        estimator.insert_right(right)
        values = estimator.instance_values()
        standard_error = values.std() / np.sqrt(values.size)
        assert abs(values.mean() - truth) < 5 * standard_error + 1e-9


class TestCommonEndpointEstimator:
    def test_is_explicit_policy(self, domain_1d):
        estimator = CommonEndpointJoinEstimator(domain_1d, num_instances=4, seed=0)
        assert estimator.endpoint_policy == "explicit"
        assert not estimator.uses_endpoint_transform


class TestStatisticalBehaviour:
    def test_unbiased_instance_values_1d(self, rng):
        domain = Domain(256)
        left = random_boxes(rng, 60, 256, 1)
        right = random_boxes(rng, 60, 256, 1)
        truth = interval_join_count(left, right)
        estimator = IntervalJoinEstimator(domain, num_instances=4000, seed=3)
        estimator.insert_left(left)
        estimator.insert_right(right)
        values = estimator.instance_values()
        standard_error = values.std() / np.sqrt(values.size)
        assert abs(values.mean() - truth) < 5 * standard_error + 1e-9

    def test_boosted_estimate_is_reasonable(self, rng):
        domain = Domain(1024, max_levels=5)
        left = random_boxes(rng, 300, 1024, 1, max_extent=64)
        right = random_boxes(rng, 300, 1024, 1, max_extent=64)
        truth = interval_join_count(left, right)
        estimator = IntervalJoinEstimator(domain, num_instances=1500, seed=5)
        estimator.insert_left(left)
        estimator.insert_right(right)
        result = estimator.estimate()
        assert result.relative_error(truth) < 0.5

    def test_deletes_reconcile_with_final_state(self, rng):
        domain = Domain(256)
        keep = random_boxes(rng, 40, 256, 1)
        transient = random_boxes(rng, 25, 256, 1)
        right = random_boxes(rng, 40, 256, 1)

        streaming = IntervalJoinEstimator(domain, num_instances=64, seed=7)
        streaming.insert_left(keep)
        streaming.insert_left(transient)
        streaming.insert_right(right)
        streaming.delete_left(transient)

        rebuilt = IntervalJoinEstimator(domain, num_instances=64, seed=7)
        rebuilt.insert_left(keep)
        rebuilt.insert_right(right)

        assert np.allclose(streaming.instance_values(), rebuilt.instance_values())
        assert streaming.left_count == rebuilt.left_count == 40

    def test_same_seed_is_deterministic(self, rng):
        domain = Domain(256)
        left = random_boxes(rng, 30, 256, 1)
        right = random_boxes(rng, 30, 256, 1)
        results = []
        for _ in range(2):
            estimator = IntervalJoinEstimator(domain, num_instances=32, seed=11)
            estimator.insert_left(left)
            estimator.insert_right(right)
            results.append(estimator.estimate().estimate)
        assert results[0] == results[1]


class TestEstimatorConfiguration:
    def test_selectivity_uses_counts(self, rng, domain_1d):
        left = random_boxes(rng, 20, 256, 1)
        right = random_boxes(rng, 30, 256, 1)
        estimator = IntervalJoinEstimator(domain_1d, num_instances=32, seed=1)
        estimator.insert_left(left)
        estimator.insert_right(right)
        result = estimator.estimate()
        assert result.selectivity == pytest.approx(result.estimate / 600)

    def test_estimate_before_insert_raises(self, domain_1d):
        estimator = IntervalJoinEstimator(domain_1d, num_instances=8, seed=1)
        with pytest.raises(EstimationError):
            estimator.estimate()

    def test_invalid_policy(self, domain_1d):
        with pytest.raises(SketchConfigError):
            IntervalJoinEstimator(domain_1d, num_instances=8, endpoint_policy="bogus")

    def test_rectangle_estimator_requires_2d(self, domain_1d):
        with pytest.raises(DimensionalityError):
            RectangleJoinEstimator(domain_1d, num_instances=8)

    def test_interval_estimator_requires_1d(self, domain_2d):
        with pytest.raises(DimensionalityError):
            IntervalJoinEstimator(domain_2d, num_instances=8)

    def test_interval_estimator_accepts_plain_size(self):
        estimator = IntervalJoinEstimator(512, num_instances=4)
        assert estimator.domain.dimension == 1

    def test_interval_convenience_updates(self, domain_1d):
        estimator = IntervalJoinEstimator(domain_1d, num_instances=16, seed=3)
        estimator.insert_left_intervals([(0, 10), (30, 60)])
        estimator.insert_right_intervals([(5, 15)])
        assert estimator.left_count == 2
        assert estimator.right_count == 1
        estimator.delete_left_intervals([(0, 10)])
        assert estimator.left_count == 1

    def test_from_guarantee_sizes_by_theorem(self, domain_1d):
        estimator = SpatialJoinEstimator.from_guarantee(
            domain_1d, epsilon=0.5, phi=0.25, self_join_left=100.0,
            self_join_right=100.0, result_lower_bound=50.0)
        # k1 = ceil(8 * 0.5 * 1e4 / (0.25 * 2500)) = 64, k2 = 4.
        assert estimator.num_instances == 64 * 4

    def test_from_budget_uses_space_accounting(self, domain_2d):
        estimator = SpatialJoinEstimator.from_budget(domain_2d, budget_words=800)
        assert estimator.num_instances == 100

    def test_storage_words(self, domain_2d):
        estimator = SpatialJoinEstimator(domain_2d, num_instances=10)
        assert estimator.storage_words() == 80.0

    def test_explicit_boosting_plan_is_used(self, rng, domain_1d):
        plan = BoostingPlan(group_size=4, num_groups=3)
        estimator = IntervalJoinEstimator(domain_1d, num_instances=12, seed=1, boosting=plan)
        estimator.insert_left(random_boxes(rng, 10, 256, 1))
        estimator.insert_right(random_boxes(rng, 10, 256, 1))
        result = estimator.estimate()
        assert len(result.group_means) == 3
