"""Tests for the workload generators (Section 7 workloads)."""

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.data.reallife import REAL_LIFE_SPECS, generate_real_life_dataset, load_real_life_pair
from repro.data.streams import UpdateKind, UpdateStream
from repro.data.synthetic import generate_intervals, generate_points, generate_rectangles
from repro.data.zipf import zipf_probabilities, zipf_sample
from repro.errors import WorkloadError
from repro.geometry.boxset import BoxSet


class TestZipf:
    def test_probabilities_sum_to_one(self):
        for skew in (0.0, 0.5, 1.0, 2.0):
            probabilities = zipf_probabilities(100, skew)
            assert probabilities.sum() == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        probabilities = zipf_probabilities(10, 0.0)
        assert np.allclose(probabilities, 0.1)

    def test_probabilities_are_decreasing_for_positive_skew(self):
        probabilities = zipf_probabilities(50, 1.0)
        assert np.all(np.diff(probabilities) <= 0)

    def test_sample_range(self, rng):
        values = zipf_sample(1000, 64, 1.0, rng)
        assert values.min() >= 0
        assert values.max() < 64

    def test_sample_skew_concentrates_mass(self, rng):
        uniform = zipf_sample(5000, 100, 0.0, rng)
        skewed = zipf_sample(5000, 100, 1.5, rng)
        # The most frequent value should be far more dominant under skew.
        uniform_top = np.bincount(uniform).max()
        skewed_top = np.bincount(skewed).max()
        assert skewed_top > 3 * uniform_top

    def test_invalid_parameters(self, rng):
        with pytest.raises(WorkloadError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(WorkloadError):
            zipf_probabilities(10, -1.0)
        with pytest.raises(WorkloadError):
            zipf_sample(-1, 10, 0.0, rng)


class TestSyntheticGenerators:
    def test_intervals_fit_domain_and_are_proper(self, rng):
        domain = Domain(512)
        data = generate_intervals(500, domain, rng=rng)
        assert len(data) == 500
        assert data.min_coordinate() >= 0
        assert data.max_coordinate() <= 511
        assert np.all(data.lows < data.highs)

    def test_interval_mean_length_control(self, rng):
        domain = Domain(4096)
        short = generate_intervals(800, domain, mean_length=4, rng=rng)
        long = generate_intervals(800, domain, mean_length=200, rng=rng)
        assert short.side_lengths().mean() < long.side_lengths().mean()

    def test_intervals_accept_plain_domain_size(self, rng):
        data = generate_intervals(10, 128, rng=rng)
        assert data.max_coordinate() <= 127

    def test_rectangles_fit_domain(self, rng):
        domain = Domain.square(256, dimension=2)
        data = generate_rectangles(400, domain, rng=rng)
        assert domain.contains(data)
        assert np.all(data.lows < data.highs)

    def test_rectangles_respect_per_dimension_skew(self, rng):
        domain = Domain((256, 256))
        data = generate_rectangles(2000, domain, skew=(0.0, 1.5), rng=rng)
        # The skewed dimension should concentrate starts on fewer values.
        unique_x = len(np.unique(data.lows[:, 0]))
        unique_y = len(np.unique(data.lows[:, 1]))
        assert unique_y < unique_x

    def test_rectangles_three_dimensional(self, rng):
        domain = Domain.square(64, dimension=3)
        data = generate_rectangles(100, domain, rng=rng)
        assert data.dimension == 3
        assert domain.contains(data)

    def test_points_fit_domain(self, rng):
        domain = Domain.square(128, dimension=2)
        points = generate_points(300, domain, rng=rng)
        assert points.coords.min() >= 0
        assert points.coords.max() < 128

    def test_clustered_points(self, rng):
        domain = Domain.square(1024, dimension=2)
        clustered = generate_points(2000, domain, clusters=4, rng=rng)
        uniform = generate_points(2000, domain, rng=rng)
        # Clustered data has smaller average nearest-cluster spread; use the
        # variance of coordinates as a cheap proxy.
        assert clustered.coords.std() != pytest.approx(uniform.coords.std(), rel=0.0)

    def test_deterministic_with_seed(self):
        domain = Domain.square(128, dimension=2)
        a = generate_rectangles(50, domain, rng=7)
        b = generate_rectangles(50, domain, rng=7)
        assert np.array_equal(a.lows, b.lows)
        assert np.array_equal(a.highs, b.highs)

    def test_invalid_count(self, rng):
        with pytest.raises(WorkloadError):
            generate_intervals(0, Domain(64), rng=rng)

    def test_wrong_skew_arity(self, rng):
        with pytest.raises(WorkloadError):
            generate_rectangles(10, Domain.square(64, 2), skew=(1.0, 1.0, 1.0), rng=rng)


class TestRealLifeDatasets:
    def test_specs_match_paper_cardinalities(self):
        assert REAL_LIFE_SPECS["LANDO"].num_objects == 33_860
        assert REAL_LIFE_SPECS["LANDC"].num_objects == 14_731
        assert REAL_LIFE_SPECS["SOIL"].num_objects == 29_662

    def test_generation_at_small_scale(self):
        domain = Domain.square(4096, dimension=2)
        data = generate_real_life_dataset("LANDC", domain, scale=0.02, seed=1)
        assert len(data) == round(14_731 * 0.02)
        assert domain.contains(data)
        assert np.all(data.lows < data.highs)

    def test_generation_is_deterministic(self):
        domain = Domain.square(4096, dimension=2)
        a = generate_real_life_dataset("SOIL", domain, scale=0.02, seed=5)
        b = generate_real_life_dataset("SOIL", domain, scale=0.02, seed=5)
        assert np.array_equal(a.lows, b.lows)

    def test_layers_share_boundary_coordinates(self):
        # The snap-to-parcel-grid behaviour must produce many shared
        # coordinates, which is what stresses the endpoint handling.
        domain = Domain.square(4096, dimension=2)
        data = generate_real_life_dataset("LANDO", domain, scale=0.05, seed=2)
        values, counts = np.unique(data.lows[:, 0], return_counts=True)
        assert counts.max() > 5

    def test_object_sizes_are_skewed(self):
        domain = Domain.square(16_384, dimension=2)
        data = generate_real_life_dataset("LANDC", domain, scale=0.05, seed=3)
        sizes = data.side_lengths()[:, 0]
        assert sizes.max() > 10 * np.median(sizes)

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            generate_real_life_dataset("NOPE", Domain.square(1024, 2))

    def test_load_pair(self):
        left, right, domain = load_real_life_pair("LANDC", "SOIL", scale=0.01, seed=4)
        assert domain.contains(left)
        assert domain.contains(right)
        assert len(left) == round(14_731 * 0.01)
        assert len(right) == round(29_662 * 0.01)

    def test_scaled_spec_validation(self):
        with pytest.raises(WorkloadError):
            REAL_LIFE_SPECS["SOIL"].scaled(0.0)


class TestUpdateStream:
    def _boxes(self, rng, count=40):
        lows = rng.integers(0, 100, size=(count, 2))
        return BoxSet(lows, lows + rng.integers(1, 10, size=(count, 2)))

    def test_insert_only_stream(self, rng):
        boxes = self._boxes(rng)
        stream = UpdateStream(boxes, seed=1)
        operations = list(stream)
        assert len(operations) == 40
        assert all(op.is_insert for op in operations)

    def test_expected_length_with_deletes(self, rng):
        boxes = self._boxes(rng)
        stream = UpdateStream(boxes, delete_fraction=0.25, seed=1)
        assert stream.expected_length() == 50
        assert len(list(stream)) == 50

    def test_deletes_follow_inserts(self, rng):
        boxes = self._boxes(rng, 60)
        stream = UpdateStream(boxes, delete_fraction=0.5, warmup_fraction=0.3, seed=2)
        seen = set()
        for operation in stream:
            key = (tuple(operation.box.lows[0]), tuple(operation.box.highs[0]))
            if operation.kind is UpdateKind.DELETE:
                assert key in seen
            else:
                seen.add(key)

    def test_final_state_matches_replay(self, rng):
        boxes = self._boxes(rng, 50)
        stream = UpdateStream(boxes, delete_fraction=0.3, seed=3)
        counts: dict[tuple, int] = {}
        for operation in stream:
            key = (tuple(operation.box.lows[0]), tuple(operation.box.highs[0]))
            counts[key] = counts.get(key, 0) + (1 if operation.is_insert else -1)
        replay_total = sum(counts.values())
        assert replay_total == len(stream.final_state())

    def test_batches_group_consecutive_kinds(self, rng):
        boxes = self._boxes(rng, 30)
        stream = UpdateStream(boxes, delete_fraction=0.4, seed=4)
        total = 0
        for kind, batch in stream.batches(batch_size=8):
            assert isinstance(kind, UpdateKind)
            assert len(batch) <= 8
            total += len(batch)
        assert total == stream.expected_length()

    def test_invalid_fractions(self, rng):
        boxes = self._boxes(rng)
        with pytest.raises(WorkloadError):
            UpdateStream(boxes, delete_fraction=1.5)
        with pytest.raises(WorkloadError):
            UpdateStream(boxes, warmup_fraction=-0.1)
