"""Tests for the experiment harness, metrics, reporting, config and CLI."""

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.data import synthetic
from repro.exact.rectangle_join import rectangle_join_count
from repro.experiments import harness
from repro.experiments.config import LAPTOP_SCALE, PAPER_SCALE, TINY_SCALE, get_scale
from repro.experiments.metrics import mean_relative_error, relative_error, summarize_errors
from repro.experiments.reporting import FigureResult, format_table
from repro.experiments import figures
from repro import cli


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(0.1)
        assert relative_error(5, 0) == 5

    def test_mean_relative_error(self):
        assert mean_relative_error([90, 110], 100) == pytest.approx(0.1)

    def test_summarize_errors(self):
        summary = summarize_errors([0.1, 0.2, 0.6])
        assert summary["mean"] == pytest.approx(0.3)
        assert summary["median"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.6)
        assert summarize_errors([]) == {"mean": 0.0, "median": 0.0, "max": 0.0}


class TestConfig:
    def test_get_scale(self):
        assert get_scale("paper") is PAPER_SCALE
        assert get_scale("laptop") is LAPTOP_SCALE
        assert get_scale("tiny") is TINY_SCALE

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_laptop_scale_is_smaller_than_paper(self):
        assert max(LAPTOP_SCALE.synthetic_sizes) < min(PAPER_SCALE.synthetic_sizes)
        assert LAPTOP_SCALE.synthetic_budget_words < PAPER_SCALE.synthetic_budget_words


class TestReporting:
    def test_add_row_validates_arity(self):
        result = FigureResult("f", "title", columns=("a", "b"))
        result.add_row(1, 2)
        with pytest.raises(ValueError):
            result.add_row(1, 2, 3)

    def test_column_extraction(self):
        result = FigureResult("f", "title", columns=("a", "b"))
        result.add_row(1, 10.0)
        result.add_row(2, 20.0)
        assert result.column("b") == [10.0, 20.0]

    def test_to_text_contains_everything(self):
        result = FigureResult("f", "My figure", columns=("size", "error"),
                              notes="a note", expected_shape="flat")
        result.add_row(1000, 0.123456)
        text = result.to_text()
        assert "My figure" in text
        assert "0.1235" in text
        assert "expected shape: flat" in text
        assert "a note" in text

    def test_format_table_handles_nan_and_large_values(self):
        text = format_table("t", ("x",), [(float("nan"),), (123456.0,)])
        assert "n/a" in text
        assert "123,456" in text


class TestHarness:
    @pytest.fixture
    def workload(self, rng):
        domain = Domain.square(512, dimension=2)
        left = synthetic.generate_rectangles(400, domain, rng=rng)
        right = synthetic.generate_rectangles(400, domain, rng=rng)
        truth = rectangle_join_count(left, right)
        return domain, left, right, truth

    def test_adaptive_domain_picks_valid_level(self, workload):
        domain, left, right, _ = workload
        tuned = harness.adaptive_domain(left, right, domain)
        assert 0 <= tuned.dyadic(0).max_level <= domain.dyadic(0).height

    def test_average_sketch_error_is_finite(self, workload):
        domain, left, right, truth = workload
        error = harness.average_sketch_error(left, right, domain, truth,
                                             budget_words=600, runs=2, seed=1)
        assert np.isfinite(error)
        assert error >= 0.0

    def test_sketch_error_for_budgets_returns_all_budgets(self, workload):
        domain, left, right, truth = workload
        budgets = (400, 800)
        errors = harness.sketch_error_for_budgets(left, right, domain, truth,
                                                  budgets=budgets, runs=2, seed=1)
        assert set(errors) == set(budgets)

    def test_histogram_errors_structure(self, workload):
        domain, left, right, truth = workload
        errors = harness.histogram_errors(left, right, domain, truth, budget_words=2000)
        assert {"EH", "GH", "EH_level", "GH_level"} <= set(errors)
        assert errors["GH_level"] >= 0


class TestFigures:
    """Smoke tests at tiny scale: structure and qualitative invariants only."""

    def test_figure5_structure(self):
        result = figures.figure5(TINY_SCALE, seed=2)
        assert result.columns == ("dataset_size", "sketch_error", "eh_error", "gh_error")
        assert len(result.rows) == len(TINY_SCALE.synthetic_sizes)

    def test_figure7_errors_below_guarantee(self):
        result = figures.figure7(TINY_SCALE, seed=2)
        for size, true_error, bound in result.rows:
            assert true_error < bound

    def test_figure8_space_is_constant_across_sizes(self):
        result = figures.figure8(TINY_SCALE, seed=2)
        kwords = result.column("sketch_kwords")
        assert max(kwords) == pytest.approx(min(kwords), rel=0.3)

    def test_figure9_structure(self):
        result = figures.figure9(TINY_SCALE, seed=2)
        assert len(result.rows) == len(TINY_SCALE.reallife_budgets)
        assert all(np.isfinite(row[1]) for row in result.rows)

    def test_ablation_maxlevel_adaptive_choice_marked(self):
        result = figures.ablation_maxlevel(TINY_SCALE, seed=2)
        assert any(row[3] for row in result.rows)

    def test_extension_epsilon_range_rows(self):
        result = figures.extension_epsilon_range(TINY_SCALE, seed=2)
        assert len(result.rows) == 2

    def test_engine_optimizer_rows(self):
        result = figures.engine_optimizer_experiment(TINY_SCALE, seed=2)
        labels = [row[0] for row in result.rows]
        assert any("chosen" in label for label in labels)
        assert any("worst" in label for label in labels)

    def test_figures_registry_is_complete(self):
        expected = {"figure5", "figure6", "figure7", "figure8", "figure9", "figure10",
                    "figure11", "ablation_maxlevel", "ablation_dimensionality",
                    "ablation_update_cost", "extension_epsilon_range",
                    "extension_common_endpoints", "engine_optimizer"}
        assert expected == set(figures.FIGURES)


class TestCli:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure5" in output
        assert "laptop" in output

    def test_run_command_writes_output(self, tmp_path, capsys):
        target = tmp_path / "results.txt"
        code = cli.main(["run", "ablation_update_cost", "--scale", "tiny",
                         "--seed", "3", "--output", str(target)])
        assert code == 0
        assert "Update cost" in capsys.readouterr().out
        assert "Update cost" in target.read_text()

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli.main(["run", "figure99"])
