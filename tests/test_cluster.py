"""Cluster tests: scatter-gather exactness, replicas, failure handling.

The in-process tests run worker servers as :class:`ThreadedServer`
instances (each with its own sharded service) under one
:class:`ThreadedClusterRouter` — same NDJSON protocol, no subprocesses.
The kill/replace end-to-end test uses real subprocess workers via
:class:`LocalFleet` because it needs to kill one mid-traffic.
"""

import os

import numpy as np
import pytest

from repro.client import ServiceClient
from repro.cluster import HeartbeatConfig, RouterConfig, ThreadedClusterRouter
from repro.cluster.fleet import LocalFleet
from repro.core.domain import Domain
from repro.errors import DegradedError, ServerError
from repro.geometry.boxset import BoxSet
from repro.server import ServerConfig, ThreadedServer
from repro.service import EstimationService, synthetic_boxes, synthetic_queries
from repro.service.store import shard_ids

DOMAIN = Domain.square(256, dimension=2)
NUM_SLOTS = 64

# Three estimator families with different reduction shapes: queryable
# linear counts, a bilinear join, and an asymmetric containment join.
FAMILY_SPECS = [
    ("ranges", "range", 32, 5),
    ("join", "rectangle", 16, 7),
    ("contain", "containment", 16, 9),
]
FAMILY_SIDES = {
    "ranges": [("data", 1)],
    "join": [("left", 2), ("right", 3)],
    "contain": [("outer", 4), ("inner", 5)],
}

pytestmark = pytest.mark.e2e


def _register_everywhere(client: ServiceClient,
                         reference: EstimationService) -> None:
    for name, family, instances, seed in FAMILY_SPECS:
        client.register(name, family=family, sizes=[256, 256],
                        instances=instances, seed=seed)
        reference.register(name, family=family, domain=DOMAIN,
                           num_instances=instances, seed=seed)


def _ingest_everywhere(client: ServiceClient, reference: EstimationService,
                       *, count: int = 300) -> None:
    for name, sides in FAMILY_SIDES.items():
        for side, seed in sides:
            boxes = synthetic_boxes(DOMAIN, count, seed=seed)
            client.ingest(name, boxes, side=side)
            reference.ingest(name, boxes, side=side)
    client.flush()
    reference.flush()


@pytest.fixture()
def worker_trio():
    """Three in-process worker servers, each a full sharded service."""
    handles = [ThreadedServer(EstimationService(num_shards=2),
                              config=ServerConfig(max_batch=16,
                                                  max_delay=0.001)).start()
               for _ in range(3)]
    try:
        yield handles
    finally:
        for handle in handles:
            handle.stop()


@pytest.fixture()
def cluster(worker_trio):
    addresses = [("127.0.0.1", handle.port) for handle in worker_trio]
    with ThreadedClusterRouter(
            addresses, config=RouterConfig(num_slots=NUM_SLOTS),
            start_heartbeat=False) as handle:
        yield handle


class TestScatterGather:
    def test_estimates_bit_identical_across_three_families(self, cluster):
        """Acceptance: cluster == single-node, exactly, for >= 3 families."""
        reference = EstimationService(num_shards=2)
        with ServiceClient("127.0.0.1", cluster.port) as client:
            _register_everywhere(client, reference)
            _ingest_everywhere(client, reference)
            queries = synthetic_queries(DOMAIN, 8, seed=17)
            for i in range(8):
                expected = reference.estimate("ranges", queries[i])
                got = client.estimate("ranges", queries[i])
                assert got.estimate == expected.estimate
                assert got.left_count == expected.left_count
            for name in ("join", "contain"):
                expected = reference.estimate(name)
                got = client.estimate(name)
                assert got.estimate == expected.estimate
                assert got.left_count == expected.left_count
                assert got.right_count == expected.right_count

    def test_ingest_partitions_by_shard_hash(self, cluster, worker_trio):
        boxes = synthetic_boxes(DOMAIN, 200, seed=21)
        owners = cluster.router._assignments()
        expected_rows = {f"w{i}": 0 for i in range(3)}
        for slot in shard_ids(boxes, NUM_SLOTS):
            expected_rows[owners[slot]] += 1
        with ServiceClient("127.0.0.1", cluster.port) as client:
            client.register("ranges", family="range", sizes=[256, 256],
                            instances=8, seed=5)
            client.ingest("ranges", boxes, side="data")
            client.flush()
        for index, handle in enumerate(worker_trio):
            count = handle.service.merged_view("ranges").count
            assert count == expected_rows[f"w{index}"]
        assert sum(expected_rows.values()) == 200

    def test_cluster_status_reports_topology(self, cluster):
        with ServiceClient("127.0.0.1", cluster.port) as client:
            status = client.cluster_status()
        assert status["num_slots"] == NUM_SLOTS
        assert status["healthy_workers"] == 3
        assert sorted(w["name"] for w in status["workers"]) == \
            ["w0", "w1", "w2"]
        assert sum(status["slots_per_owner"].values()) == NUM_SLOTS

    def test_metrics_aggregate_the_fleet(self, cluster):
        with ServiceClient("127.0.0.1", cluster.port) as client:
            client.register("ranges", family="range", sizes=[256, 256],
                            instances=8, seed=5)
            client.ingest("ranges", synthetic_boxes(DOMAIN, 50, seed=1),
                          side="data")
            client.estimate("ranges", synthetic_queries(DOMAIN, 1, seed=2))
            text = client.metrics()
        assert text.startswith("# repro cluster router metrics")
        assert "repro_cluster_workers_total 3" in text
        assert "repro_cluster_workers_healthy 3" in text
        assert 'repro_cluster_requests_total{op="estimate"}' in text
        # Per-worker counters are summed across the fleet: the ingest above
        # fanned to every owner, so workers saw ingests too.
        assert 'repro_cluster_worker_requests_total{op="ingest"}' in text
        assert 'repro_cluster_worker_uptime_seconds{worker="w0"}' in text
        # Fleet-aggregated delta-propagation and program-executor counters:
        # the estimate above forced at least one merged-view build somewhere.
        assert "repro_cluster_delta_applies_total" in text
        assert "repro_cluster_view_rebuilds_total" in text
        assert "repro_cluster_program_runs" in text

    def test_unknown_estimator_is_a_typed_error(self, cluster):
        with ServiceClient("127.0.0.1", cluster.port) as client:
            with pytest.raises(ServerError) as info:
                client.estimate("missing")
            assert info.value.code == "bad_request"
            # The router connection survives the typed failure.
            assert client.ping()["cluster"] is True


class TestReplicas:
    def test_bootstrap_replicas_serve_bit_identical_reads(self, worker_trio):
        # Worker 0 accumulates data first; 1 and 2 join later as replicas
        # bootstrapped over the wire from its snapshot.
        addresses = [("127.0.0.1", worker_trio[0].port)]
        reference = EstimationService(num_shards=2)
        with ThreadedClusterRouter(
                addresses, config=RouterConfig(num_slots=NUM_SLOTS),
                start_heartbeat=False) as handle:
            with ServiceClient("127.0.0.1", handle.port) as client:
                _register_everywhere(client, reference)
                _ingest_everywhere(client, reference, count=200)
                for index in (1, 2):
                    handle.run(handle.router.bootstrap_replica(
                        f"r{index}", "127.0.0.1", worker_trio[index].port,
                        source="w0"))
                status = client.cluster_status()
                roles = {w["name"]: w["role"] for w in status["workers"]}
                assert roles == {"w0": "shard", "r1": "replica",
                                 "r2": "replica"}

                # Reads round-robin across the owner group; every member
                # answers bit-identically.
                queries = synthetic_queries(DOMAIN, 1, seed=23)
                expected = reference.estimate("ranges", queries).estimate
                for _ in range(6):
                    assert client.estimate("ranges",
                                           queries).estimate == expected

                # Writes fan to the primary AND the replicas, keeping the
                # mirrors exact for later reads.
                more = synthetic_boxes(DOMAIN, 150, seed=29)
                client.ingest("ranges", more, side="data")
                reference.ingest("ranges", more, side="data")
                client.flush()
                reference.flush()
                expected = reference.estimate("ranges", queries).estimate
                for _ in range(6):
                    assert client.estimate("ranges",
                                           queries).estimate == expected
        for index in (1, 2):
            view = worker_trio[index].service.merged_view("ranges")
            assert view.count == 350

    def test_replica_of_unknown_source_is_rejected(self, cluster, worker_trio):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            cluster.run(cluster.router.bootstrap_replica(
                "r9", "127.0.0.1", worker_trio[0].port, source="nope"))


@pytest.mark.skipif(os.name != "posix", reason="POSIX process management")
class TestKillReplace:
    def test_worker_death_degrades_then_replacement_restores(self, tmp_path):
        """Acceptance e2e: kill 1 of 3 workers mid-traffic.

        Surviving ingest continues (partial-apply with a structured
        degraded error), affected estimates return structured degraded
        errors, and a replacement bootstrapped from a pre-crash snapshot
        restores exact service.
        """
        heartbeat = HeartbeatConfig(interval=30.0, max_failures=3,
                                    timeout=2.0)
        with LocalFleet(3) as fleet:
            with ThreadedClusterRouter(
                    fleet.addresses(),
                    config=RouterConfig(num_slots=NUM_SLOTS),
                    heartbeat=heartbeat, start_heartbeat=False) as handle:
                reference = EstimationService(num_shards=2)
                client = ServiceClient("127.0.0.1", handle.port, timeout=60)
                client.register("ranges", family="range", sizes=[256, 256],
                                instances=16, seed=5)
                reference.register("ranges", family="range", domain=DOMAIN,
                                   num_instances=16, seed=5)
                initial = synthetic_boxes(DOMAIN, 200, seed=1)
                client.ingest("ranges", initial, side="data")
                reference.ingest("ranges", initial, side="data")
                client.flush()
                reference.flush()

                # An operator keeps a recent snapshot of w1 around (here:
                # fetched over the wire just before the crash).
                stored = handle.run(handle.manager.fetch_snapshot("w1"))

                fleet.workers[1].stop()
                for _ in range(heartbeat.max_failures):
                    handle.run(handle.manager.heartbeat_once())
                status = client.cluster_status()
                health = {w["name"]: w["healthy"] for w in status["workers"]}
                assert health == {"w0": True, "w1": False, "w2": True}

                # Estimates that need the dead owner fail with a *typed*
                # degraded error naming it.
                queries = synthetic_queries(DOMAIN, 1, seed=23)
                with pytest.raises(DegradedError) as info:
                    client.estimate("ranges", queries)
                assert info.value.detail["down_owners"] == ["w1"]

                # Ingest keeps flowing to survivors: the reply is a
                # degraded error carrying exact applied/dropped accounting.
                more = synthetic_boxes(DOMAIN, 200, seed=31)
                with pytest.raises(DegradedError) as info:
                    client.ingest("ranges", more, side="data")
                detail = info.value.detail
                owners = handle.router._assignments()
                mask = np.array([owners[slot] != "w1"
                                 for slot in shard_ids(more, NUM_SLOTS)])
                assert detail["applied"] == int(mask.sum())
                assert detail["dropped"] == len(more) - int(mask.sum())
                assert detail["down_owners"] == ["w1"]
                reference.ingest(
                    "ranges",
                    BoxSet(more.lows[mask], more.highs[mask]),
                    side="data")
                reference.flush()

                # Bootstrap a replacement from the stored snapshot under
                # the same ring name: slots stay put, service is restored.
                replacement = fleet.spawn_extra()
                handle.run(handle.manager.replace_worker(
                    "w1", replacement.host, replacement.port, data=stored))
                client.flush()
                status = client.cluster_status()
                assert all(w["healthy"] for w in status["workers"])
                assert [w["generation"] for w in status["workers"]
                        if w["name"] == "w1"] == [1]

                expected = reference.estimate("ranges", queries).estimate
                assert client.estimate("ranges",
                                       queries).estimate == expected
                client.close()
