"""Property tests for the compiled-program layer (core/program.py).

The tentpole guarantee of the shared estimator IR: for every one of the
eight estimator families — over random workloads with deletions, sharding
and merged shard views — the program executor must return *exactly* what
the pre-refactor scalar pipeline computed, with the cross-batch letter-sum
cache on **and** off.  The reference implementations below rebuild the
historical scalar math straight from the sketch-bank primitives (counters,
``evaluate``), so the executor is checked against an independent oracle,
not against itself.

Also covered: the mixed-estimator ``estimate_multi`` dispatch (one executor
batch over several estimators, results in request order), reduction
grouping across unequal instance counts, replica expansion, program
introspection (``describe_program``) and executor cache behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boosting import median_of_means, split_instances
from repro.core.program import (
    ProgramExecutor,
    SketchProgram,
    describe_program,
)
from repro.core.range_query import RangeQueryEstimator
from repro.errors import SketchConfigError
from repro.geometry.boxset import BoxSet
from repro.service import EstimationService, EstimatorSpec
from repro.service.specs import compile_programs

#: Family -> (domain sizes, update sides, extra spec options).
FAMILY_CASES = {
    "interval": ((64,), ("left", "right"), {}),
    "rectangle": ((32, 32), ("left", "right"), {}),
    "hyperrect": ((16, 16, 16), ("left", "right"), {}),
    "extended_overlap": ((32, 32), ("left", "right"), {}),
    "common_endpoint": ((32, 32), ("left", "right"), {}),
    "containment": ((32, 32), ("outer", "inner"), {}),
    "epsilon": ((32, 32), ("left", "right"), {"epsilon": 2}),
    "range": ((32, 32), ("data",), {}),
}

PAIRED_FAMILIES = {"interval", "rectangle", "hyperrect", "extended_overlap",
                   "common_endpoint"}

NUM_INSTANCES = 9  # 3 groups of 3 under split_instances


def _boxes(rng: np.random.Generator, count: int, sizes: tuple[int, ...],
           *, degenerate: bool) -> BoxSet:
    if degenerate:
        lows = np.column_stack(
            [rng.integers(0, size, size=count) for size in sizes])
        return BoxSet(lows, lows.copy(), validate=False)
    lows = np.column_stack(
        [rng.integers(0, size - 1, size=count) for size in sizes])
    extents = np.column_stack(
        [rng.integers(1, max(2, size // 3), size=count) for size in sizes])
    highs = np.minimum(lows + extents, np.asarray(sizes, dtype=np.int64) - 1)
    return BoxSet(lows, highs, validate=False)


def reference_scalar_estimate(family: str, view, query=None):
    """The pre-refactor scalar pipeline, rebuilt from bank primitives.

    Returns ``(estimate, instance_values, group_means, left, right)``
    computed with the exact historical accumulation order: per-term counter
    products summed into a zero-initialised value vector, boosted with
    :func:`median_of_means` under the ``split_instances`` default plan.
    """
    if family in PAIRED_FAMILIES:
        values = np.zeros(view.num_instances, dtype=np.float64)
        for (left_word, right_word), coefficient in view._combos.items():
            values += coefficient * (view.left_bank.counter(left_word)
                                     * view.right_bank.counter(right_word))
        left, right = view.left_count, view.right_count
    elif family == "epsilon":
        values = (view._point_bank.counter(view._point_word)
                  * view._cube_bank.counter(view._cube_word))
        left, right = view.left_count, view.right_count
    elif family == "containment":
        values = (view._outer_bank.counter(view._outer_word)
                  * view._inner_bank.counter(view._inner_word))
        left, right = view.outer_count, view.inner_count
    elif family == "range":
        query_box = view._query_box(query)
        values = np.zeros(view.num_instances, dtype=np.float64)
        for word in view._words:
            values += view._bank.counter(word) * view._bank.evaluate(
                view._query_word(word), query_box)
        left, right = view.count, 1
    else:  # pragma: no cover - defensive
        raise AssertionError(f"unknown family {family!r}")
    estimate, group_means = median_of_means(
        values, split_instances(view.num_instances))
    return estimate, values, group_means, left, right


def _build_service(family: str, case: dict) -> tuple[EstimationService, tuple]:
    sizes, sides, options = FAMILY_CASES[family]
    rng = np.random.default_rng(case["seed"])
    degenerate = family == "epsilon"
    service = EstimationService(num_shards=case["num_shards"],
                                flush_threshold=None)
    spec = EstimatorSpec.create(family, sizes, NUM_INSTANCES,
                                seed=case["seed"] % 1000, **options)
    service.register("est", spec)
    for side in sides:
        inserted = _boxes(rng, case["inserts"], sizes, degenerate=degenerate)
        service.ingest("est", inserted, side=side, kind="insert")
        deletions = int(case["delete_fraction"] * (case["inserts"] - 1))
        if deletions:
            service.ingest("est", inserted[:deletions], side=side,
                           kind="delete")
    service.flush()
    return service, (sizes, rng)


workload = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "num_shards": st.integers(min_value=1, max_value=3),
    "inserts": st.integers(min_value=2, max_value=30),
    "delete_fraction": st.floats(min_value=0.0, max_value=0.75),
    "num_queries": st.integers(min_value=1, max_value=5),
})


@pytest.mark.parametrize("family", sorted(FAMILY_CASES))
@settings(max_examples=8, deadline=None)
@given(case=workload)
def test_executor_matches_prerefactor_scalar_cache_on_and_off(family, case):
    """Cache on == cache off == the historical scalar math, bit for bit."""
    service, (sizes, rng) = _build_service(family, case)
    spec = service.spec("est")
    view = service.merged_view("est")

    if family == "range":
        queries = _boxes(rng, case["num_queries"], sizes, degenerate=False)
        scalar_queries = [queries[j] for j in range(len(queries))]
    else:
        queries = case["num_queries"]
        scalar_queries = [None] * case["num_queries"]

    cached = ProgramExecutor(cache_size=4096)
    uncached = ProgramExecutor(cache_size=0)
    with_cache = cached.run(compile_programs(spec, view, queries))
    without_cache = uncached.run(compile_programs(spec, view, queries))
    # A second cached run must hit the cache and still agree bit for bit.
    rerun = cached.run(compile_programs(spec, view, queries))

    assert len(with_cache) == case["num_queries"]
    for j, scalar_query in enumerate(scalar_queries):
        estimate, values, group_means, left, right = reference_scalar_estimate(
            family, view, scalar_query)
        for result in (with_cache[j], without_cache[j], rerun[j]):
            assert result.estimate == estimate
            assert np.array_equal(result.instance_values, values)
            assert np.array_equal(result.group_means, group_means)
            assert result.left_count == left
            assert result.right_count == right

    if family == "range":
        assert cached.stats.cache_hits > 0
        assert uncached.stats.cache_hits == 0
        # Intra-batch sharing is structural: at most one kernel call per
        # (dim, letter) pair regardless of batch size or cache policy.
        letters_in_use = 2 * len(sizes)
        assert uncached.stats.kernel_calls <= 2 * letters_in_use


@settings(max_examples=8, deadline=None)
@given(case=workload)
def test_estimate_multi_mixed_families_matches_scalar(case):
    """One estimate_multi dispatch over 4 families == per-request scalars."""
    sizes = (32, 32)
    rng = np.random.default_rng(case["seed"])
    service = EstimationService(num_shards=case["num_shards"],
                                flush_threshold=None)
    service.register("ranges", family="range", domain=sizes,
                     num_instances=NUM_INSTANCES, seed=1)
    service.register("join", family="rectangle", domain=sizes,
                     num_instances=NUM_INSTANCES, seed=2)
    service.register("contain", family="containment", domain=sizes,
                     num_instances=NUM_INSTANCES, seed=3)
    service.register("eps", family="epsilon", domain=sizes,
                     num_instances=NUM_INSTANCES, seed=4, epsilon=2)
    data = _boxes(rng, case["inserts"] + 2, sizes, degenerate=False)
    points = _boxes(rng, case["inserts"] + 2, sizes, degenerate=True)
    service.ingest("ranges", data, side="data")
    service.ingest("join", data, side="left")
    service.ingest("join", data, side="right")
    service.ingest("contain", data, side="outer")
    service.ingest("contain", data, side="inner")
    service.ingest("eps", points, side="left")
    service.ingest("eps", points, side="right")
    service.flush()

    queries = _boxes(rng, case["num_queries"], sizes, degenerate=False)
    requests = []
    for j in range(case["num_queries"]):
        requests.append(("ranges", queries[j]))
        requests.append(("join", None))
        requests.append(("contain", None))
        requests.append(("eps", None))

    before = service.stats.batch_estimates
    multi = service.estimate_multi(requests)
    assert service.stats.batch_estimates == before + 1  # ONE engine dispatch

    assert len(multi) == len(requests)
    for (name, query), result in zip(requests, multi):
        scalar = service.estimate(name, query)
        assert result.estimate == scalar.estimate
        assert np.array_equal(result.instance_values, scalar.instance_values)
        assert np.array_equal(result.group_means, scalar.group_means)
        assert result.left_count == scalar.left_count
        assert result.right_count == scalar.right_count


class TestExecutorUnit:
    def test_reduction_groups_span_unequal_instance_counts(self, rng):
        """One run may mix programs with different (instances, plan) pairs."""
        domain_sizes = (64, 64)
        from repro.core.domain import Domain

        domain = Domain(domain_sizes)
        first = RangeQueryEstimator(domain, 6, seed=1)
        second = RangeQueryEstimator(domain, 10, seed=2)
        boxes = _boxes(rng, 40, domain_sizes, degenerate=False)
        first.insert(boxes)
        second.insert(boxes)
        queries = _boxes(rng, 5, domain_sizes, degenerate=False)
        programs = first.lower(queries) + second.lower(queries)
        results = ProgramExecutor(cache_size=0).run(programs)
        for j in range(5):
            assert results[j].estimate == first.estimate(queries[j]).estimate
            assert results[5 + j].estimate == \
                second.estimate(queries[j]).estimate

    def test_replicas_expand_to_owned_results(self, rng):
        from repro.core.domain import Domain
        from repro.core.join_rect import RectangleJoinEstimator

        estimator = RectangleJoinEstimator(Domain((32, 32)), 6, seed=3)
        estimator.insert_left(_boxes(rng, 10, (32, 32), degenerate=False))
        estimator.insert_right(_boxes(rng, 10, (32, 32), degenerate=False))
        results = ProgramExecutor(cache_size=0).run(
            [estimator.lower(replicas=3)])
        assert len(results) == 3
        assert results[0].instance_values is not results[1].instance_values
        results[0].instance_values[0] += 1.0
        assert results[1].instance_values[0] != results[0].instance_values[0]

    def test_program_validation(self):
        with pytest.raises(SketchConfigError):
            SketchProgram(terms=(), num_instances=4,
                          plan=split_instances(4), left_count=0)
        with pytest.raises(SketchConfigError):
            ProgramExecutor(cache_size=-1)

    def test_describe_program_reports_covers_and_reduction(self, rng):
        from repro.core.domain import Domain

        estimator = RangeQueryEstimator(Domain((64, 64)), 8, seed=1)
        estimator.insert(_boxes(rng, 20, (64, 64), degenerate=False))
        program = estimator.lower(_boxes(rng, 1, (64, 64),
                                         degenerate=False))[0]
        description = describe_program(program)
        assert description["num_instances"] == 8
        assert len(description["terms"]) == 4  # {I, U}^2 counter words
        assert all(len(term["letter_sums"]) == 2
                   for term in description["terms"])
        assert description["letter_sum_requests"], "deduped requests expected"
        assert all(request["cover_size"] >= 1
                   for request in description["letter_sum_requests"])
        reduction = description["reduction"]
        assert reduction["group_size"] * reduction["num_groups"] == \
            reduction["total_instances"]

    def test_letter_sum_cache_does_not_pin_banks(self, rng):
        """Cache keys hold weak bank refs: replaced views stay collectable."""
        import gc
        import weakref

        from repro.core.domain import Domain

        estimator = RangeQueryEstimator(Domain((64, 64)), 4, seed=1)
        estimator.insert(_boxes(rng, 10, (64, 64), degenerate=False))
        executor = ProgramExecutor(cache_size=64)
        queries = _boxes(rng, 6, (64, 64), degenerate=False)
        executor.run(estimator.lower(queries))
        assert executor.cache_entries > 0
        bank_ref = weakref.ref(estimator.bank)
        del estimator
        gc.collect()
        assert bank_ref() is None  # cached vectors must not pin the bank

    def test_letter_sum_cache_is_bounded(self, rng):
        from repro.core.domain import Domain

        estimator = RangeQueryEstimator(Domain((64, 64)), 4, seed=1)
        estimator.insert(_boxes(rng, 10, (64, 64), degenerate=False))
        executor = ProgramExecutor(cache_size=8)
        executor.run(estimator.lower(_boxes(rng, 50, (64, 64),
                                            degenerate=False)))
        assert executor.cache_entries <= 8


# -- delta propagation --------------------------------------------------------

delta_workload = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "num_shards": st.integers(min_value=1, max_value=3),
    "inserts": st.integers(min_value=2, max_value=25),
    "delete_fraction": st.floats(min_value=0.0, max_value=0.75),
    "rounds": st.integers(min_value=2, max_value=4),
})


@pytest.mark.parametrize("family", sorted(FAMILY_CASES))
@settings(max_examples=6, deadline=None)
@given(case=delta_workload)
def test_delta_applied_views_match_scalar_reference(family, case):
    """Delta-refreshed views == the pre-refactor scalar oracle, bit for bit.

    After every flush the service's merged view is refreshed by the
    O(delta) apply path (one fused counter add per bank, xi families
    aliased); each refreshed view must agree with the historical scalar
    pipeline evaluated over an *independently* re-merged store view.
    """
    sizes, sides, options = FAMILY_CASES[family]
    rng = np.random.default_rng(case["seed"])
    degenerate = family == "epsilon"
    service = EstimationService(num_shards=case["num_shards"],
                                flush_threshold=None, delta_propagation=True)
    spec = EstimatorSpec.create(family, sizes, NUM_INSTANCES,
                                seed=case["seed"] % 1000, **options)
    service.register("est", spec)
    query = (_boxes(rng, 1, sizes, degenerate=False)
             if family == "range" else None)
    scalar_query = query[0] if family == "range" else None

    for round_index in range(case["rounds"]):
        for side in sides:
            inserted = _boxes(rng, case["inserts"], sizes,
                              degenerate=degenerate)
            service.ingest("est", inserted, side=side, kind="insert")
            deletions = int(case["delete_fraction"] * (case["inserts"] - 1))
            if deletions and round_index % 2 == 1:
                service.ingest("est", inserted[:deletions], side=side,
                               kind="delete")
        service.flush()
        result = service.estimate("est", query)
        reference_view = service.store.merge_view("est")
        estimate, values, group_means, left, right = reference_scalar_estimate(
            family, reference_view, scalar_query)
        assert result.estimate == estimate
        assert np.array_equal(result.instance_values, values)
        assert np.array_equal(result.group_means, group_means)
        assert result.left_count == left
        assert result.right_count == right

    stats = service.stats
    assert stats.delta_applies == case["rounds"] - 1
    assert stats.rebuilds == 1
    assert stats.delta_applies + stats.rebuilds == stats.cache_misses


def test_letter_sum_cache_survives_delta_applied_views(rng):
    """Delta-applied views reuse the letter sums their predecessors cached.

    The cache keys on the xi-family banks (by identity) plus the dyadic
    signature — never on counters — and delta application aliases the xi
    banks of the cached view, so a refreshed view answers the same query
    batch with zero new letter-sum kernel work.  A full rebuild, by
    contrast, redraws fresh xi bank objects and runs cold.
    """
    sizes = (32, 32)
    queries = _boxes(rng, 6, sizes, degenerate=False)

    def run_once(view, service):
        spec = service.spec("est")
        return service.program_executor.run(
            compile_programs(spec, view, queries))

    computed = {}
    for delta_on in (True, False):
        service = EstimationService(num_shards=2, flush_threshold=None,
                                    delta_propagation=delta_on)
        service.register("est", EstimatorSpec.create(
            "range", sizes, NUM_INSTANCES, seed=5))
        service.ingest("est", _boxes(rng, 40, sizes, degenerate=False),
                       side="data")
        service.flush()
        warm = run_once(service.merged_view("est"), service)
        after_warm = service.program_executor.stats.letter_sums_computed
        assert after_warm > 0

        service.ingest("est", _boxes(rng, 40, sizes, degenerate=False),
                       side="data")
        service.flush()
        refreshed_view = service.merged_view("est")
        refreshed = run_once(refreshed_view, service)
        computed[delta_on] = (
            service.program_executor.stats.letter_sums_computed - after_warm)
        if delta_on:
            assert service.stats.delta_applies == 1
        else:
            assert service.stats.delta_applies == 0
        # Counters changed, so estimates legitimately differ from the warm
        # run — but they must match a from-scratch merge of the new state.
        fresh = service.store.estimate_batch("est", queries)
        for got, want in zip(refreshed, fresh):
            assert got.estimate == want.estimate
            assert np.array_equal(got.instance_values, want.instance_values)
        del warm
    assert computed[True] == 0   # aliased xi banks: every letter sum cached
    assert computed[False] > 0   # rebuilt view: fresh banks, cold cache
