"""Tenancy primitives: registry, quotas (property-based), facade isolation,
and tenant-aware persistence (snapshot embed + WAL replay)."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domain import Domain
from repro.errors import (
    AuthenticationError,
    EstimationError,
    QuotaExceededError,
    ServiceError,
)
from repro.server.protocol import boxes_from_rows
from repro.service import EstimationService
from repro.tenancy import (
    TenantAdmission,
    TenantQuota,
    TenantRecord,
    TenantRegistry,
    TokenBucket,
    hash_token,
    namespaced,
    split_namespace,
    validate_tenant_id,
)
from repro.wal.recovery import recover_service
from repro.wal.writer import WalWriter

DOMAIN = Domain.square(256, dimension=2)


def register_join(target, name="join", seed=3):
    target.register(name, family="rectangle", domain=DOMAIN,
                    num_instances=16, seed=seed)


def one_box():
    return boxes_from_rows([[0, 0, 10, 10]], 2)


class TestNaming:
    def test_namespaced_and_split_round_trip(self):
        full = namespaced("acme", "join")
        assert full == "acme/join"
        assert split_namespace(full) == ("acme", "join")
        assert split_namespace("bare") == (None, "bare")

    def test_tenant_id_validation(self):
        assert validate_tenant_id("acme-1.prod") == "acme-1.prod"
        for bad in ("", "has space", "a/b", ".leading", "*admin*"):
            with pytest.raises(ServiceError):
                validate_tenant_id(bad)

    def test_adversarial_names_stay_inside_the_namespace(self):
        # The prefix is *applied*, never parsed from caller input, so a
        # name that mimics another tenant's namespace nests harmlessly.
        assert namespaced("me", "other/join") == "me/other/join"

    def test_hash_token_is_stable_and_rejects_empty(self):
        assert hash_token("secret") == hash_token("secret")
        assert hash_token("secret") != hash_token("secret2")
        with pytest.raises(ServiceError):
            hash_token("")


class TestRegistry:
    def test_create_authenticate_and_reject(self):
        registry = TenantRegistry()
        record = registry.create("acme", token="tok-a")
        assert registry.authenticate("tok-a").tenant_id == "acme"
        assert record.token_hash == hash_token("tok-a")
        with pytest.raises(AuthenticationError):
            registry.authenticate("wrong")

    def test_duplicate_id_and_token_rejected(self):
        registry = TenantRegistry()
        registry.create("acme", token="tok-a")
        with pytest.raises(ServiceError):
            registry.create("acme", token="tok-b")
        with pytest.raises(ServiceError):
            registry.create("globex", token="tok-a")

    def test_disable_blocks_authentication(self):
        registry = TenantRegistry()
        registry.create("acme", token="tok-a")
        registry.update("acme", disabled=True)
        with pytest.raises(AuthenticationError):
            registry.authenticate("tok-a")
        registry.update("acme", disabled=False)
        assert registry.authenticate("tok-a").tenant_id == "acme"

    def test_token_rotation_reindexes(self):
        registry = TenantRegistry()
        registry.create("acme", token="old")
        registry.update("acme", token="new")
        assert registry.authenticate("new").tenant_id == "acme"
        with pytest.raises(AuthenticationError):
            registry.authenticate("old")

    def test_remove_forgets_both_indexes(self):
        registry = TenantRegistry()
        registry.create("acme", token="tok-a")
        registry.remove("acme")
        assert "acme" not in registry
        with pytest.raises(AuthenticationError):
            registry.authenticate("tok-a")

    def test_state_round_trip(self):
        registry = TenantRegistry()
        registry.create("acme", token="tok-a",
                        quota=TenantQuota(ingest_boxes_per_sec=42.0, share=3))
        registry.create("globex", token="tok-g")
        registry.update("globex", disabled=True)
        clone = TenantRegistry.from_state(registry.to_state())
        assert clone.ids() == ["acme", "globex"]
        assert clone.get("acme").quota.share == 3
        assert clone.get("globex").disabled
        assert clone.authenticate("tok-a").tenant_id == "acme"


class TestTokenBucketProperties:
    @given(st.lists(st.tuples(st.integers(1, 50),
                              st.floats(0.0, 2.0)), max_size=40),
           st.floats(1.0, 100.0), st.floats(1.0, 200.0))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_replay(self, ops, rate, capacity):
        """Same request sequence against the explicit clock -> same answers."""
        def run():
            bucket = TokenBucket(rate, capacity, now=0.0)
            now, out = 0.0, []
            for n, dt in ops:
                now += dt
                out.append(bucket.try_acquire(n, now))
            return out

        assert run() == run()

    @given(st.lists(st.tuples(st.integers(1, 50),
                              st.floats(0.0, 1.0)), max_size=60),
           st.floats(1.0, 50.0), st.floats(1.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_conservation_bound(self, ops, rate, capacity):
        """Admitted work never exceeds burst + refill + one batch of debt.

        The bucket admits a batch when it holds min(n, capacity) tokens and
        charges the full n (possibly into debt), so total admitted work is
        bounded by capacity + rate * elapsed + max batch size.
        """
        bucket = TokenBucket(rate, capacity, now=0.0)
        now, admitted, max_batch = 0.0, 0.0, 0.0
        for n, dt in ops:
            now += dt
            max_batch = max(max_batch, float(n))
            if bucket.try_acquire(n, now) == 0.0:
                admitted += n
        assert admitted <= capacity + rate * now + max_batch + 1e-6

    def test_retry_after_names_a_sufficient_wait(self):
        bucket = TokenBucket(10.0, 10.0, now=0.0)
        assert bucket.try_acquire(10, 0.0) == 0.0
        delay = bucket.try_acquire(5, 0.0)
        assert delay > 0.0
        # Waiting the advertised delay makes the same request admissible.
        assert bucket.try_acquire(5, delay) == 0.0

    def test_clock_going_backwards_is_clamped(self):
        bucket = TokenBucket(10.0, 10.0, now=100.0)
        assert bucket.try_acquire(10, 100.0) == 0.0
        assert bucket.try_acquire(1, 50.0) > 0.0  # no refill from the past
        assert bucket.try_acquire(1, 100.5) == 0.0


class TestTenantAdmission:
    def test_ingest_rejection_carries_retry_after(self):
        quota = TenantQuota(ingest_boxes_per_sec=10.0, ingest_burst_boxes=10.0)
        admission = TenantAdmission("acme", quota, now=0.0)
        admission.admit_ingest(10, 0.0)
        with pytest.raises(QuotaExceededError) as info:
            admission.admit_ingest(10, 0.0)
        assert info.value.retry_after > 0.0
        assert admission.describe(0.0)["ingest_rejections"] == 1
        admission.admit_ingest(10, info.value.retry_after + 0.01)

    def test_estimate_in_flight_limit(self):
        quota = TenantQuota(max_estimates_in_flight=2)
        admission = TenantAdmission("acme", quota, now=0.0)
        admission.acquire_estimate()
        admission.acquire_estimate()
        with pytest.raises(QuotaExceededError):
            admission.acquire_estimate()
        admission.release_estimate()
        admission.acquire_estimate()


class TestFacadeIsolation:
    def test_same_public_name_two_tenants(self):
        service = EstimationService(num_shards=2)
        service.enable_tenancy()
        a = service.tenant_facade("acme")
        b = service.tenant_facade("globex")
        register_join(a)
        register_join(b)
        a.ingest("join", one_box(), side="left")
        a.ingest("join", boxes_from_rows([[5, 5, 15, 15]], 2), side="right")
        a.flush()
        assert a.names() == ["join"] and b.names() == ["join"]
        assert sorted(service.names()) == ["acme/join", "globex/join"]
        result = a.estimate("join")
        assert result.left_count == 1 and result.right_count == 1
        # globex's estimator saw none of acme's boxes: it is still empty.
        b.flush()
        with pytest.raises(EstimationError):
            b.estimate("join")

    def test_unregister_is_scoped(self):
        service = EstimationService(num_shards=2)
        service.enable_tenancy()
        a = service.tenant_facade("acme")
        b = service.tenant_facade("globex")
        register_join(a)
        register_join(b)
        b.unregister("join")
        assert service.names() == ["acme/join"]
        with pytest.raises(ServiceError):
            b.unregister("acme/join")  # nests to globex/acme/join: unknown

    def test_describe_filters_to_namespace(self):
        service = EstimationService(num_shards=2)
        service.enable_tenancy()
        a = service.tenant_facade("acme")
        register_join(service.tenant_facade("globex"))
        register_join(a)
        description = a.describe()
        assert sorted(description["estimators"]) == ["join"]


class TestTenantPersistence:
    def test_snapshot_embeds_the_registry(self, tmp_path):
        service = EstimationService(num_shards=2)
        service.tenant_create(
            "acme", token="tok-a",
            quota=TenantQuota(ingest_boxes_per_sec=99.0, share=4))
        register_join(service.tenant_facade("acme"))
        path = tmp_path / "tenants.sketch"
        service.save(path, format="binary")
        restored = EstimationService.load(path)
        assert restored.tenants is not None
        record = restored.tenants.authenticate("tok-a")
        assert record.quota.ingest_boxes_per_sec == 99.0
        assert record.quota.share == 4
        assert restored.names() == ["acme/join"]

    def test_snapshot_without_tenants_stays_untenanted(self, tmp_path):
        service = EstimationService(num_shards=2)
        path = tmp_path / "plain.sketch"
        service.save(path, format="binary")
        assert EstimationService.load(path).tenants is None

    def test_wal_replays_tenant_lifecycle(self, tmp_path):
        wal_dir = tmp_path / "wal"
        os.makedirs(wal_dir)
        base = str(tmp_path / "base.sketch")
        service = EstimationService(num_shards=2)
        service.save(base, format="binary")
        service.attach_wal(WalWriter(str(wal_dir)), checkpoint_path=base)
        service.tenant_create("acme", token="tok-a")
        service.tenant_create("globex", token="tok-g")
        facade = service.tenant_facade("acme")
        register_join(facade, name="r")
        facade.ingest("r", one_box(), side="left")
        service.flush()
        service.tenant_update("globex", disabled=True)
        service.tenant_remove("acme")
        service.detach_wal()

        recovered, report = recover_service(str(wal_dir), base)
        assert report.replayed_records >= 5
        registry = recovered.tenants
        assert registry.ids() == ["globex"]
        assert registry.get("globex").disabled
        # acme's estimators went with the tenant, on replay too.
        assert recovered.names() == []

    def test_upsert_replay_is_idempotent(self):
        registry = TenantRegistry()
        record = TenantRecord(tenant_id="acme", token_hash=hash_token("t"),
                              quota=TenantQuota(), created_at=1.0,
                              disabled=False)
        registry.upsert(record)
        registry.upsert(record)
        assert len(registry) == 1
