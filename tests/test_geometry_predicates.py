"""Tests for repro.geometry.predicates and relationships."""

import numpy as np
import pytest

from repro.geometry.boxset import BoxSet, PointSet
from repro.geometry.interval import Interval
from repro.geometry.predicates import (
    containment_matrix,
    interval_contains,
    interval_overlap,
    interval_overlap_plus,
    l1_distance,
    l2_distance,
    linf_distance,
    overlap_matrix,
    pairwise_linf_distances,
    point_in_box_matrix,
    rect_contains,
    rect_overlap,
    rect_overlap_plus,
)
from repro.geometry.rectangle import Rect
from repro.geometry.relationships import (
    IntervalRelationship,
    classify_intervals,
    classify_rects,
    rects_overlap_from_relationship,
    rects_overlap_plus_from_relationship,
)


class TestScalarPredicates:
    def test_interval_predicates_delegate(self):
        assert interval_overlap(Interval(0, 5), Interval(3, 9))
        assert not interval_overlap(Interval(0, 5), Interval(5, 9))
        assert interval_overlap_plus(Interval(0, 5), Interval(5, 9))
        assert interval_contains(Interval(0, 9), Interval(2, 5))

    def test_rect_predicates_delegate(self):
        a = Rect.from_bounds((0, 0), (5, 5))
        b = Rect.from_bounds((5, 5), (9, 9))
        assert not rect_overlap(a, b)
        assert rect_overlap_plus(a, b)
        assert rect_contains(Rect.from_bounds((0, 0), (9, 9)), a)


class TestDistances:
    def test_linf(self):
        assert linf_distance((0, 0), (3, 5)) == 5.0

    def test_l1(self):
        assert l1_distance((0, 0), (3, 5)) == 8.0

    def test_l2(self):
        assert l2_distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_shape_mismatch(self):
        with pytest.raises(Exception):
            linf_distance((0, 0), (1, 2, 3))


class TestMatrixPredicates:
    def test_overlap_matrix_matches_scalar(self):
        left = BoxSet(np.array([[0, 0], [10, 10]]), np.array([[5, 5], [20, 20]]))
        right = BoxSet(np.array([[4, 4], [30, 30]]), np.array([[12, 12], [40, 40]]))
        matrix = overlap_matrix(left, right)
        for i in range(2):
            for j in range(2):
                assert matrix[i, j] == left.rect(i).overlaps(right.rect(j))

    def test_overlap_matrix_closed(self):
        left = BoxSet(np.array([[0]]), np.array([[5]]))
        right = BoxSet(np.array([[5]]), np.array([[9]]))
        assert not overlap_matrix(left, right)[0, 0]
        assert overlap_matrix(left, right, closed=True)[0, 0]

    def test_containment_matrix(self):
        outer = BoxSet(np.array([[0, 0]]), np.array([[10, 10]]))
        inner = BoxSet(np.array([[2, 2], [8, 8]]), np.array([[5, 5], [15, 15]]))
        matrix = containment_matrix(outer, inner)
        assert matrix[0, 0]
        assert not matrix[0, 1]

    def test_point_in_box_matrix(self):
        boxes = BoxSet(np.array([[0, 0]]), np.array([[10, 10]]))
        points = PointSet(np.array([[5, 5], [11, 2]]))
        matrix = point_in_box_matrix(boxes, points)
        assert matrix[0, 0]
        assert not matrix[0, 1]

    def test_pairwise_linf(self):
        a = PointSet(np.array([[0, 0]]))
        b = PointSet(np.array([[3, 7], [1, 1]]))
        distances = pairwise_linf_distances(a, b)
        assert distances[0, 0] == 7
        assert distances[0, 1] == 1


class TestRelationships:
    def test_disjoint(self):
        assert classify_intervals(Interval(0, 3), Interval(5, 9)) is IntervalRelationship.DISJOINT

    def test_meet(self):
        assert classify_intervals(Interval(0, 5), Interval(5, 9)) is IntervalRelationship.MEET

    def test_overlap(self):
        assert classify_intervals(Interval(0, 6), Interval(4, 9)) is IntervalRelationship.OVERLAP

    def test_contain(self):
        assert classify_intervals(Interval(0, 9), Interval(3, 5)) is IntervalRelationship.CONTAIN

    def test_contain_meet(self):
        rel = classify_intervals(Interval(0, 9), Interval(0, 5))
        assert rel is IntervalRelationship.CONTAIN_MEET

    def test_identical(self):
        rel = classify_intervals(Interval(2, 7), Interval(2, 7))
        assert rel is IntervalRelationship.IDENTICAL

    def test_symmetry(self):
        a, b = Interval(0, 9), Interval(3, 5)
        assert classify_intervals(a, b) == classify_intervals(b, a)

    def test_is_overlapping_flags(self):
        assert not IntervalRelationship.DISJOINT.is_overlapping
        assert not IntervalRelationship.MEET.is_overlapping
        assert IntervalRelationship.MEET.is_overlapping_plus
        assert IntervalRelationship.OVERLAP.is_overlapping
        assert IntervalRelationship.IDENTICAL.is_overlapping

    def test_classify_rects_matches_overlap_predicate(self, rng):
        for _ in range(50):
            lows = rng.integers(0, 20, size=(2, 2))
            extents = rng.integers(1, 10, size=(2, 2))
            a = Rect.from_bounds(lows[0], lows[0] + extents[0])
            b = Rect.from_bounds(lows[1], lows[1] + extents[1])
            relationship = classify_rects(a, b)
            assert rects_overlap_from_relationship(relationship) == a.overlaps(b)
            assert rects_overlap_plus_from_relationship(relationship) == a.overlaps_plus(b)

    def test_relationship_covers_figure3_cases(self):
        # One example per case of Figure 3, with r the first argument.
        cases = {
            IntervalRelationship.DISJOINT: (Interval(0, 2), Interval(5, 9)),
            IntervalRelationship.MEET: (Interval(0, 5), Interval(5, 9)),
            IntervalRelationship.OVERLAP: (Interval(0, 6), Interval(3, 9)),
            IntervalRelationship.CONTAIN: (Interval(0, 9), Interval(2, 6)),
            IntervalRelationship.CONTAIN_MEET: (Interval(0, 9), Interval(4, 9)),
            IntervalRelationship.IDENTICAL: (Interval(1, 8), Interval(1, 8)),
        }
        for expected, (r, s) in cases.items():
            assert classify_intervals(r, s) is expected
