"""Tests for repro.geometry.boxset."""

import numpy as np
import pytest

from repro.errors import DimensionalityError, DomainError
from repro.geometry.boxset import BoxSet, PointSet
from repro.geometry.rectangle import Rect


@pytest.fixture
def boxes() -> BoxSet:
    return BoxSet(
        np.array([[0, 0], [5, 5], [10, 2]]),
        np.array([[4, 4], [9, 9], [15, 6]]),
    )


class TestBoxSetConstruction:
    def test_shapes_must_match(self):
        with pytest.raises(DimensionalityError):
            BoxSet(np.zeros((3, 2)), np.zeros((3, 3)))

    def test_lower_above_upper_rejected(self):
        with pytest.raises(DomainError):
            BoxSet(np.array([[5]]), np.array([[3]]))

    def test_from_rects_round_trip(self, boxes):
        rebuilt = BoxSet.from_rects(boxes.to_rects())
        assert np.array_equal(rebuilt.lows, boxes.lows)
        assert np.array_equal(rebuilt.highs, boxes.highs)

    def test_from_intervals(self):
        result = BoxSet.from_intervals([(0, 5), (3, 9)])
        assert result.dimension == 1
        assert len(result) == 2

    def test_from_rects_dimension_mismatch(self):
        with pytest.raises(DimensionalityError):
            BoxSet.from_rects([Rect.interval(0, 1), Rect.from_bounds((0, 0), (1, 1))])

    def test_empty(self):
        empty = BoxSet.empty(3)
        assert len(empty) == 0
        assert empty.dimension == 3

    def test_arrays_are_read_only(self, boxes):
        with pytest.raises(ValueError):
            boxes.lows[0, 0] = 99


class TestBoxSetAccessors:
    def test_len_and_dimension(self, boxes):
        assert len(boxes) == 3
        assert boxes.dimension == 2

    def test_rect_access(self, boxes):
        assert boxes.rect(1) == Rect.from_bounds((5, 5), (9, 9))

    def test_getitem_single_row_keeps_2d_shape(self, boxes):
        single = boxes[1]
        assert isinstance(single, BoxSet)
        assert len(single) == 1

    def test_getitem_mask(self, boxes):
        subset = boxes[np.array([True, False, True])]
        assert len(subset) == 2

    def test_side_lengths(self, boxes):
        assert np.array_equal(boxes.side_lengths()[0], np.array([5, 5]))

    def test_bounding_box(self, boxes):
        assert boxes.bounding_box() == Rect.from_bounds((0, 0), (15, 9))

    def test_min_max_coordinates(self, boxes):
        assert boxes.min_coordinate() == 0
        assert boxes.max_coordinate() == 15

    def test_iteration_yields_rects(self, boxes):
        assert all(isinstance(rect, Rect) for rect in boxes)


class TestBoxSetTransformations:
    def test_concat(self, boxes):
        combined = boxes.concat(boxes)
        assert len(combined) == 6

    def test_concat_dimension_mismatch(self, boxes):
        with pytest.raises(DimensionalityError):
            boxes.concat(BoxSet.empty(3))

    def test_translated(self, boxes):
        moved = boxes.translated((10, 20))
        assert np.array_equal(moved.lows[0], np.array([10, 20]))

    def test_scaled(self, boxes):
        scaled = boxes.scaled(3)
        assert np.array_equal(scaled.highs[0], np.array([12, 12]))

    def test_scaled_rejects_nonpositive(self, boxes):
        with pytest.raises(DomainError):
            boxes.scaled(0)

    def test_expanded(self, boxes):
        grown = boxes.expanded(2)
        assert np.array_equal(grown.lows[0], np.array([-2, -2]))
        assert np.array_equal(grown.highs[0], np.array([6, 6]))

    def test_clipped_drops_outside_boxes(self):
        data = BoxSet(np.array([[0, 0], [50, 50]]), np.array([[5, 5], [60, 60]]))
        clipped = data.clipped(0, 20)
        assert len(clipped) == 1

    def test_shrunk_for_endpoint_transform(self):
        data = BoxSet(np.array([[2]]), np.array([[7]]))
        shrunk = data.shrunk_for_endpoint_transform()
        assert shrunk.lows[0, 0] == 7
        assert shrunk.highs[0, 0] == 20

    def test_projected(self, boxes):
        projected = boxes.projected([1])
        assert projected.dimension == 1
        assert np.array_equal(projected.highs[:, 0], boxes.highs[:, 1])

    def test_sample(self, boxes, rng):
        sampled = boxes.sample(2, rng)
        assert len(sampled) == 2

    def test_sample_too_large(self, boxes, rng):
        with pytest.raises(DomainError):
            boxes.sample(10, rng)


class TestPointSet:
    def test_basic_properties(self):
        points = PointSet(np.array([[1, 2], [3, 4]]))
        assert len(points) == 2
        assert points.dimension == 2
        assert points.point(1) == (3, 4)

    def test_to_boxes_is_degenerate(self):
        points = PointSet(np.array([[1, 2]]))
        boxes = points.to_boxes()
        assert np.array_equal(boxes.lows, boxes.highs)

    def test_expanded_boxes(self):
        points = PointSet(np.array([[10, 10]]))
        cubes = points.expanded_boxes(3)
        assert np.array_equal(cubes.lows[0], np.array([7, 7]))
        assert np.array_equal(cubes.highs[0], np.array([13, 13]))

    def test_expanded_boxes_clipping(self):
        points = PointSet(np.array([[1, 1]]))
        cubes = points.expanded_boxes(5, clip_lo=0, clip_hi=20)
        assert np.array_equal(cubes.lows[0], np.array([0, 0]))

    def test_concat(self):
        a = PointSet(np.array([[1, 1]]))
        b = PointSet(np.array([[2, 2]]))
        assert len(a.concat(b)) == 2
