"""Tests for the four-wise independent sign families and stable seed hashes."""

import os
import subprocess
import sys
import zlib

import numpy as np
import pytest

from repro.core.hashing import (
    MERSENNE_PRIME,
    FourWiseFamilyBank,
    coefficients_from_state,
    coefficients_to_state,
    stable_seed_offset,
    stable_text_hash,
    stack_xi_coefficients,
)
from repro.errors import SketchConfigError


class TestConstruction:
    def test_requires_positive_families(self):
        with pytest.raises(SketchConfigError):
            FourWiseFamilyBank(0, 16, seed=1)

    def test_requires_positive_universe(self):
        with pytest.raises(SketchConfigError):
            FourWiseFamilyBank(4, 0, seed=1)

    def test_universe_limit(self):
        with pytest.raises(SketchConfigError):
            FourWiseFamilyBank(1, int(MERSENNE_PRIME) + 1, seed=1)

    def test_seed_words(self):
        bank = FourWiseFamilyBank(8, 64, seed=0)
        assert bank.seed_words() == 32


class TestDeterminism:
    def test_same_seed_gives_identical_families(self):
        ids = np.arange(64)
        first = FourWiseFamilyBank(6, 64, seed=42).signs(ids)
        second = FourWiseFamilyBank(6, 64, seed=42).signs(ids)
        assert np.array_equal(first, second)

    def test_different_seeds_give_different_families(self):
        ids = np.arange(64)
        first = FourWiseFamilyBank(6, 64, seed=1).signs(ids)
        second = FourWiseFamilyBank(6, 64, seed=2).signs(ids)
        assert not np.array_equal(first, second)

    def test_table_and_direct_evaluation_agree(self):
        # The lazily built table must yield exactly the same signs as direct
        # polynomial evaluation.
        bank_direct = FourWiseFamilyBank(5, 512, seed=7)
        bank_table = FourWiseFamilyBank(5, 512, seed=7)
        small_ids = np.arange(10)
        direct = bank_direct.signs(small_ids)
        # Force the table path by requesting many ids first.
        bank_table.signs(np.arange(512))
        bank_table.signs(np.arange(512))
        via_table = bank_table.signs(small_ids)
        assert np.array_equal(direct, via_table)


class TestValues:
    def test_signs_are_plus_minus_one(self):
        bank = FourWiseFamilyBank(10, 256, seed=3)
        signs = bank.signs(np.arange(256))
        assert set(np.unique(signs)) <= {-1, 1}

    def test_shape(self):
        bank = FourWiseFamilyBank(7, 100, seed=3)
        assert bank.signs(np.arange(30)).shape == (7, 30)

    def test_family_subset(self):
        bank = FourWiseFamilyBank(6, 64, seed=5)
        full = bank.signs(np.arange(64))
        subset = bank.signs(np.arange(64), families=np.array([1, 3]))
        assert np.array_equal(subset, full[[1, 3]])

    def test_signs_for_family(self):
        bank = FourWiseFamilyBank(6, 64, seed=5)
        full = bank.signs(np.arange(64))
        assert np.array_equal(bank.signs_for_family(2, np.arange(64)), full[2])

    def test_out_of_range_ids_rejected(self):
        bank = FourWiseFamilyBank(2, 16, seed=0)
        with pytest.raises(SketchConfigError):
            bank.signs(np.array([16]))
        with pytest.raises(SketchConfigError):
            bank.signs(np.array([-1]))


class TestStatisticalProperties:
    def test_signs_are_roughly_balanced(self):
        bank = FourWiseFamilyBank(200, 1024, seed=11)
        signs = bank.signs(np.arange(1024)).astype(np.float64)
        # Mean over all families and ids should be close to zero.
        assert abs(signs.mean()) < 0.02

    def test_pairwise_products_are_roughly_unbiased(self):
        # E[xi_a * xi_b] should be ~0 for a != b; averaging the product over
        # many independent families estimates that expectation.
        bank = FourWiseFamilyBank(4000, 64, seed=13)
        ids = np.array([3, 57])
        signs = bank.signs(ids).astype(np.float64)
        correlation = float(np.mean(signs[:, 0] * signs[:, 1]))
        assert abs(correlation) < 0.06

    def test_fourwise_products_are_roughly_unbiased(self):
        bank = FourWiseFamilyBank(4000, 64, seed=17)
        ids = np.array([1, 9, 33, 60])
        signs = bank.signs(ids).astype(np.float64)
        product = np.prod(signs, axis=1)
        assert abs(float(product.mean())) < 0.06

    def test_second_moment_estimation(self):
        # The defining property: for a frequency vector f, E[(sum f_i xi_i)^2]
        # equals sum f_i^2.
        rng = np.random.default_rng(0)
        frequencies = rng.integers(0, 5, size=128).astype(np.float64)
        truth = float(np.sum(frequencies ** 2))
        bank = FourWiseFamilyBank(6000, 128, seed=23)
        signs = bank.signs(np.arange(128)).astype(np.float64)
        sketches = signs @ frequencies
        estimate = float(np.mean(sketches ** 2))
        assert estimate == pytest.approx(truth, rel=0.1)


class TestStableSeedHashing:
    def test_known_values(self):
        assert stable_text_hash(("R", "S")) == zlib.crc32(b"R::S")
        assert stable_seed_offset(("R", "S")) == zlib.crc32(b"R::S") % 100_000
        assert stable_seed_offset(("R", "S")) != stable_seed_offset(("S", "R"))
        assert stable_seed_offset(("only",)) == zlib.crc32(b"only") % 100_000

    def test_modulus(self):
        assert 0 <= stable_seed_offset(("a", "b"), modulus=7) < 7
        with pytest.raises(SketchConfigError):
            stable_seed_offset(("a",), modulus=0)

    def test_engine_alias_delegates(self):
        from repro.engine.synopses import pair_seed_offset

        assert pair_seed_offset(("R", "S")) == stable_seed_offset(("R", "S"))

    def test_cross_process_stability(self):
        """The offset must not depend on per-process hash randomisation.

        A fresh interpreter with a different PYTHONHASHSEED must derive the
        same seed — the property that keeps snapshot-restored service
        sketches merge-compatible with sketches built in other processes.
        """
        import repro

        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        script = ("from repro.core.hashing import stable_seed_offset; "
                  "print(stable_seed_offset(('R', 'S', 'T')))")
        values = set()
        for hash_seed in ("0", "1", "424242"):
            env["PYTHONHASHSEED"] = hash_seed
            output = subprocess.run(
                [sys.executable, "-c", script], env=env, capture_output=True,
                text=True, check=True).stdout.strip()
            values.add(int(output))
        assert values == {stable_seed_offset(("R", "S", "T"))}


class TestCoefficientSerialisation:
    """xi-coefficient (de)serialisation round trips (sketch snapshot seeds)."""

    def test_state_round_trip_rebuilds_identical_families(self):
        bank = FourWiseFamilyBank(6, 1024, seed=17)
        state = coefficients_to_state(bank.coefficients)
        restored = FourWiseFamilyBank.from_coefficients(state, 1024)
        ids = np.arange(1024)
        assert np.array_equal(restored.signs(ids), bank.signs(ids))
        assert restored.matches_coefficients(bank.coefficients)

    def test_state_is_json_serialisable(self):
        import json

        bank = FourWiseFamilyBank(3, 64, seed=5)
        text = json.dumps(bank.coefficients_state())
        assert bank.matches_coefficients(json.loads(text))

    def test_matches_coefficients_accepts_all_forms(self):
        bank = FourWiseFamilyBank(4, 128, seed=9)
        as_list = bank.coefficients_state()
        as_array = coefficients_from_state(as_list)
        read_only = as_array.copy()
        read_only.setflags(write=False)
        assert bank.matches_coefficients(as_list)
        assert bank.matches_coefficients(as_array)
        assert bank.matches_coefficients(read_only)

    def test_matches_coefficients_rejects_other_seeds_and_shapes(self):
        bank = FourWiseFamilyBank(4, 128, seed=9)
        other = FourWiseFamilyBank(4, 128, seed=10)
        assert not bank.matches_coefficients(other.coefficients)
        assert not bank.matches_coefficients([[1, 2, 3]])  # 3 coefficients
        assert not bank.matches_coefficients(
            FourWiseFamilyBank(5, 128, seed=9).coefficients)

    def test_malformed_state_raises(self):
        with pytest.raises(SketchConfigError):
            coefficients_from_state([1, 2, 3, 4])  # 1-d: no family axis

    def test_stacked_tensor_matches_per_bank_matrices(self):
        banks = [FourWiseFamilyBank(4, 256, seed=s) for s in (1, 2, 3)]
        stacked = stack_xi_coefficients(banks)
        assert stacked.shape == (3, 4, 4)
        assert stacked.flags.c_contiguous
        for dim, bank in enumerate(banks):
            assert bank.matches_coefficients(stacked[dim])

    def test_stacked_tensor_requires_banks(self):
        with pytest.raises(SketchConfigError):
            stack_xi_coefficients([])
