"""Property tests for the consistent-hash ring (:mod:`repro.cluster.ring`).

The two properties the cluster depends on:

* slot ownership is a pure function of the *membership set* — insertion
  order never matters, so routers built from any attach order agree, and
* membership changes are *local*: adding a worker steals roughly ``1/N``
  of the slots (all of them landing on the new worker), and removing one
  only remaps the slots it owned.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import DEFAULT_VNODES, HashRing, stable_hash
from repro.errors import ServiceError

NUM_SLOTS = 256

worker_names = st.lists(
    st.text(alphabet="abcdefghij0123456789-", min_size=1, max_size=12),
    min_size=1, max_size=8, unique=True)


@st.composite
def names_and_extra(draw):
    """A worker set plus one name not in it."""
    workers = draw(worker_names)
    extra = draw(st.text(alphabet="klmnopqrs0123456789_",
                         min_size=1, max_size=12)
                 .filter(lambda name: name not in workers))
    return workers, extra


class TestStableHash:
    def test_is_process_independent(self):
        # Python's builtin hash() is salted per process; the ring must use
        # a keyed-nothing blake2b so every router agrees on ownership.
        digest = hashlib.blake2b(b"slot:0", digest_size=8).digest()
        assert stable_hash("slot:0") == int.from_bytes(digest, "big")

    def test_distinct_inputs_rarely_collide(self):
        values = {stable_hash(f"worker-{i}") for i in range(1000)}
        assert len(values) == 1000


class TestRingProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=st.data(), workers=worker_names)
    def test_assignments_ignore_insertion_order(self, data, workers):
        shuffled = data.draw(st.permutations(workers))
        ring_a = HashRing(workers)
        ring_b = HashRing()
        for name in shuffled:
            ring_b.add(name)
        assert ring_a.assignments(NUM_SLOTS) == ring_b.assignments(NUM_SLOTS)

    @settings(max_examples=50, deadline=None)
    @given(pair=names_and_extra())
    def test_adding_a_worker_remaps_a_bounded_fraction(self, pair):
        workers, extra = pair
        ring = HashRing(workers)
        before = ring.assignments(NUM_SLOTS)
        ring.add(extra)
        after = ring.assignments(NUM_SLOTS)

        moved = [slot for slot in range(NUM_SLOTS)
                 if before[slot] != after[slot]]
        # Every remapped slot goes *to* the newcomer — surviving workers
        # never shuffle slots among themselves.
        assert all(after[slot] == extra for slot in moved)
        # And the newcomer takes roughly its fair share: 1/(N+1) of the
        # slots in expectation, bounded here with generous slack for the
        # variance of 64-vnode arc lengths.
        expected = NUM_SLOTS / (len(workers) + 1)
        assert len(moved) <= min(NUM_SLOTS, 2.5 * expected + 8)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(), workers=worker_names)
    def test_removing_a_worker_only_remaps_its_slots(self, data, workers):
        victim = data.draw(st.sampled_from(workers))
        ring = HashRing(workers)
        before = ring.assignments(NUM_SLOTS)
        if len(workers) == 1:
            ring.remove(victim)
            with pytest.raises(ServiceError):
                ring.owner(0)
            return
        ring.remove(victim)
        after = ring.assignments(NUM_SLOTS)
        for slot in range(NUM_SLOTS):
            if before[slot] != victim:
                assert after[slot] == before[slot]
            else:
                assert after[slot] != victim

    @settings(max_examples=50, deadline=None)
    @given(pair=names_and_extra())
    def test_add_then_remove_restores_assignments(self, pair):
        workers, extra = pair
        ring = HashRing(workers)
        before = ring.assignments(NUM_SLOTS)
        ring.add(extra)
        ring.remove(extra)
        assert ring.assignments(NUM_SLOTS) == before


class TestRingBasics:
    def test_empty_ring_has_no_owner(self):
        with pytest.raises(ServiceError):
            HashRing().owner(0)

    def test_duplicate_add_is_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ServiceError):
            ring.add("a")

    def test_remove_unknown_is_rejected(self):
        with pytest.raises(ServiceError):
            HashRing(["a"]).remove("b")

    def test_membership_protocol(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring and "c" not in ring
        assert len(ring) == 2
        assert ring.workers() == ["a", "b"]
        assert len(ring._points) == 2 * DEFAULT_VNODES

    def test_single_worker_owns_everything(self):
        ring = HashRing(["only"])
        assert set(ring.assignments(NUM_SLOTS)) == {"only"}
