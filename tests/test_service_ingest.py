"""Tests for the batched ingestion pipeline."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.geometry.boxset import BoxSet
from repro.service.ingest import IngestPipeline
from repro.service.specs import EstimatorSpec
from repro.service.store import ShardedSketchStore

from tests.conftest import random_boxes


def _store(num_shards=4, **spec_kwargs):
    store = ShardedSketchStore(num_shards)
    store.register("est", EstimatorSpec.create(
        "rectangle", (256, 256), spec_kwargs.pop("num_instances", 16), seed=5))
    return store


class TestBuffering:
    def test_submit_does_not_touch_shards(self, rng):
        store = _store()
        pipeline = IngestPipeline(store, flush_threshold=None)
        pipeline.submit("est", random_boxes(rng, 50, 256, 2))
        assert pipeline.pending == 50
        for estimator in store.shard_estimators("est"):
            assert estimator.left_count == 0
        assert store.version("est") == 0

    def test_flush_applies_and_clears(self, rng):
        store = _store()
        pipeline = IngestPipeline(store, flush_threshold=None)
        pipeline.submit("est", random_boxes(rng, 50, 256, 2))
        report = pipeline.flush()
        assert report.boxes == 50
        assert pipeline.pending == 0
        assert sum(e.left_count for e in store.shard_estimators("est")) == 50
        assert store.version("est") == 1
        assert not pipeline.flush()  # nothing left

    def test_empty_batches_ignored(self):
        pipeline = IngestPipeline(_store(), flush_threshold=None)
        pipeline.submit("est", BoxSet.empty(2))
        assert pipeline.pending == 0

    def test_auto_flush_threshold(self, rng):
        store = _store()
        pipeline = IngestPipeline(store, flush_threshold=64)
        pipeline.submit("est", random_boxes(rng, 63, 256, 2))
        assert pipeline.pending == 63
        pipeline.submit("est", random_boxes(rng, 1, 256, 2))
        assert pipeline.pending == 0
        assert pipeline.stats.auto_flushes == 1

    def test_bad_inputs_rejected(self, rng):
        pipeline = IngestPipeline(_store(), flush_threshold=None)
        with pytest.raises(ServiceError):
            pipeline.submit("nope", random_boxes(rng, 3, 256, 2))
        with pytest.raises(ServiceError):
            pipeline.submit("est", random_boxes(rng, 3, 256, 2), kind="upsert")
        with pytest.raises(ServiceError):
            pipeline.submit("est", random_boxes(rng, 3, 256, 2), side="top")
        with pytest.raises(ServiceError):
            IngestPipeline(_store(), flush_threshold=0)


class TestExactness:
    def _reference(self, spec, batches):
        single = spec.build()
        for side, kind, boxes in batches:
            getattr(single, f"{kind}_{side}")(boxes)
        return single

    def test_buffered_mixed_ops_match_direct_application(self, rng):
        """Regrouping inserts/deletes inside a flush must be lossless."""
        store = _store()
        spec = store.spec("est")
        pipeline = IngestPipeline(store, flush_threshold=None)
        batches = []
        for index in range(6):
            boxes = random_boxes(rng, 40, 256, 2)
            side = "left" if index % 2 == 0 else "right"
            batches.append((side, "insert", boxes))
            if index >= 2:
                removed = boxes[np.arange(0, len(boxes), 4)]
                batches.append((side, "delete", removed))
        for side, kind, boxes in batches:
            pipeline.submit("est", boxes, side=side, kind=kind)
        pipeline.flush()

        single = self._reference(spec, batches)
        merged = store.merge_view("est")
        for word in single.left_bank.words:
            assert np.array_equal(merged.left_bank.counter(word),
                                  single.left_bank.counter(word))
        for word in single.right_bank.words:
            assert np.array_equal(merged.right_bank.counter(word),
                                  single.right_bank.counter(word))
        assert merged.left_count == single.left_count
        assert merged.right_count == single.right_count

    def test_parallel_flush_equals_serial_flush(self, rng):
        batches = [random_boxes(rng, 80, 256, 2) for _ in range(5)]

        results = []
        for parallel in (False, True):
            store = _store()
            pipeline = IngestPipeline(store, flush_threshold=None,
                                      max_workers=None if parallel else 1)
            for boxes in batches:
                pipeline.submit("est", boxes)
            report = pipeline.flush(parallel=parallel)
            assert report.boxes == sum(len(b) for b in batches)
            results.append(store.merge_view("est"))

        serial, threaded = results
        for word in serial.left_bank.words:
            assert np.array_equal(serial.left_bank.counter(word),
                                  threaded.left_bank.counter(word))

    def test_flush_report_contents(self, rng):
        store = ShardedSketchStore(2)
        for name in ("a", "b"):
            store.register(name, EstimatorSpec.create("range", (256,), 8, seed=3))
        pipeline = IngestPipeline(store, flush_threshold=None)
        pipeline.submit("a", random_boxes(rng, 30, 256, 1), side="data")
        pipeline.submit("b", random_boxes(rng, 20, 256, 1), side="data")
        report = pipeline.flush()
        assert report.names == ("a", "b")
        assert report.boxes == 50
        assert report.shards_touched <= 2
        assert bool(report)
