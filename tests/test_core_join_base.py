"""Tests for the shared pair-term machinery behind the join estimators."""

import pytest

from repro.core.atomic import Letter
from repro.core.join_base import PairedSketchJoinEstimator, expand_pair_terms
from repro.core.join_extended import EXTENDED_OVERLAP_PAIR_TERMS
from repro.core.join_hyperrect import (
    EXPLICIT_ENDPOINT_PAIR_TERMS,
    STANDARD_PAIR_TERMS,
    SpatialJoinEstimator,
)
from repro.errors import SketchConfigError

from tests.conftest import random_boxes


class TestExpandPairTerms:
    def test_one_dimension_matches_theorem1(self):
        combos = expand_pair_terms(STANDARD_PAIR_TERMS, 1)
        assert combos == {
            ((Letter.INTERVAL,), (Letter.ENDPOINTS,)): 0.5,
            ((Letter.ENDPOINTS,), (Letter.INTERVAL,)): 0.5,
        }

    def test_two_dimensions_matches_theorem2(self):
        combos = expand_pair_terms(STANDARD_PAIR_TERMS, 2)
        assert len(combos) == 4
        # Z = (X_II Y_EE + X_IE Y_EI + X_EI Y_IE + X_EE Y_II) / 4
        assert combos[((Letter.INTERVAL, Letter.INTERVAL),
                       (Letter.ENDPOINTS, Letter.ENDPOINTS))] == pytest.approx(0.25)
        assert all(value == pytest.approx(0.25) for value in combos.values())

    def test_coefficients_sum_to_product_of_per_dim_sums(self):
        # Per dimension the standard pair terms sum to 1, so the total over all
        # word combinations must be 1 for every dimensionality.
        for dimension in (1, 2, 3):
            combos = expand_pair_terms(STANDARD_PAIR_TERMS, dimension)
            assert sum(combos.values()) == pytest.approx(1.0)

    def test_explicit_terms_sum_to_minus_one_per_dimension(self):
        # (1/2 + 1/2 - 1 - 1 - 1/2 - 1/2) = -2 per dimension.
        combos = expand_pair_terms(EXPLICIT_ENDPOINT_PAIR_TERMS, 2)
        assert sum(combos.values()) == pytest.approx(4.0)  # (-2)^2

    def test_extended_terms_include_leaf_words(self):
        combos = expand_pair_terms(EXTENDED_OVERLAP_PAIR_TERMS, 1)
        left_words = {left for left, _ in combos}
        assert (Letter.LOWER_LEAF,) in left_words
        assert (Letter.UPPER_LEAF,) in left_words


class TestPairedEstimatorConfiguration:
    def test_requires_pair_terms(self, domain_1d):
        with pytest.raises(SketchConfigError):
            PairedSketchJoinEstimator(domain_1d, [], num_instances=4)

    def test_requires_positive_instances(self, domain_1d):
        with pytest.raises(SketchConfigError):
            PairedSketchJoinEstimator(domain_1d, STANDARD_PAIR_TERMS, num_instances=0)

    def test_word_banks_cover_all_combos(self, domain_2d):
        estimator = SpatialJoinEstimator(domain_2d, num_instances=4, seed=0,
                                         endpoint_policy="explicit")
        left_words = set(estimator.left_bank.words)
        right_words = set(estimator.right_bank.words)
        for left_word, right_word in estimator._combos:
            assert left_word in left_words
            assert right_word in right_words

    def test_banks_share_xi_families(self, domain_2d):
        estimator = SpatialJoinEstimator(domain_2d, num_instances=4, seed=0)
        assert all(a is b for a, b in zip(estimator.left_bank.xi_banks,
                                          estimator.right_bank.xi_banks))

    def test_storage_words_explicit_policy_is_larger(self, domain_1d):
        standard = SpatialJoinEstimator(domain_1d, num_instances=10, seed=0)
        explicit = SpatialJoinEstimator(domain_1d, num_instances=10, seed=0,
                                        endpoint_policy="explicit")
        assert explicit.storage_words() > standard.storage_words()

    def test_transform_policy_uses_expanded_domain(self, domain_1d):
        transformed = SpatialJoinEstimator(domain_1d, num_instances=4, seed=0,
                                           endpoint_policy="transform")
        plain = SpatialJoinEstimator(domain_1d, num_instances=4, seed=0,
                                     endpoint_policy="assume_distinct")
        assert transformed.uses_endpoint_transform
        assert not plain.uses_endpoint_transform
        assert transformed.left_bank.domain.sizes[0] > plain.left_bank.domain.sizes[0]

    def test_counts_track_inserts_and_deletes(self, rng, domain_1d):
        estimator = SpatialJoinEstimator(domain_1d, num_instances=8, seed=0)
        left = random_boxes(rng, 12, 256, 1)
        right = random_boxes(rng, 7, 256, 1)
        estimator.insert_left(left)
        estimator.insert_right(right)
        estimator.delete_right(right[:3])
        assert estimator.left_count == 12
        assert estimator.right_count == 4

    def test_repr_contains_counts(self, rng, domain_1d):
        estimator = SpatialJoinEstimator(domain_1d, num_instances=8, seed=0)
        estimator.insert_left(random_boxes(rng, 3, 256, 1))
        assert "|R|=3" in repr(estimator)
