"""Crash-injection tests: ``kill -9`` a durable worker, recover, compare.

The durability claim under test: after a hard kill (SIGKILL — no atexit,
no flush, no goodbye), restarting a worker on the same ``--wal-dir``
yields a service **bit-identical** to a never-crashed twin fed exactly
the durable record stream.  With ``--wal-sync flush`` (or ``fsync``)
every *acknowledged* ingest is durable; with ``none`` a crash may lose a
buffered tail, but recovery must still land on a clean record prefix —
never a torn or corrupted state.

CI runs this file as a matrix over seeds and sync modes via the
``DURABILITY_SEED`` / ``DURABILITY_WAL_SYNC`` environment variables, and
uploads the WAL directory as an artifact (``DURABILITY_ARTIFACT_DIR``)
when an assertion fails.
"""

import os
import shutil
import signal
import threading
import time

import numpy as np
import pytest

from repro.client import ServiceClient
from repro.cluster.fleet import spawn_worker
from repro.core.domain import Domain
from repro.geometry.boxset import BoxSet
from repro.wal import read_wal_records, recover_service

pytestmark = pytest.mark.e2e

DOMAIN = Domain.square(256, dimension=2)
SEED = int(os.environ.get("DURABILITY_SEED", "0"))
SYNC = os.environ.get("DURABILITY_WAL_SYNC", "flush")
#: Acked ingests are durable under these modes even across SIGKILL.
ACK_IS_DURABLE = SYNC in ("flush", "fsync")


def batch(seed: int, count: int = 64) -> BoxSet:
    rng = np.random.default_rng(seed)
    lows = rng.integers(0, 256, size=(count, 2), dtype=np.int64)
    extents = rng.integers(0, 32, size=(count, 2), dtype=np.int64)
    highs = np.minimum(lows + extents, 255)
    return BoxSet(np.minimum(lows, highs), highs)


def queries(seed: int, count: int = 16) -> list[BoxSet]:
    return [batch(10_000 + seed * 100 + index, 1) for index in range(count)]


def export_artifacts(wal_dir) -> None:
    """Copy the WAL directory somewhere CI can upload it."""
    target = os.environ.get("DURABILITY_ARTIFACT_DIR")
    if target:
        dest = os.path.join(target, f"seed{SEED}-{SYNC}-{os.path.basename(wal_dir)}")
        shutil.copytree(wal_dir, dest, dirs_exist_ok=True)


class TestKillNineRecovery:
    def test_recovery_matches_never_crashed_twin(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        worker = spawn_worker(wal_dir=wal_dir, wal_sync=SYNC, shards=2)
        acked = 0
        try:
            with ServiceClient(worker.host, worker.port) as client:
                client.register("ranges", family="range", sizes=[256, 256],
                                instances=32, seed=5)
                for index in range(6):
                    client.ingest("ranges", batch(SEED * 1000 + index),
                                  side="data")
                    acked += 1

                # Keep ingesting from a thread and SIGKILL mid-stream, so
                # the log likely ends in a torn record.
                stop = threading.Event()

                def hammer():
                    index = 100
                    while not stop.is_set():
                        try:
                            client.ingest("ranges",
                                          batch(SEED * 1000 + index),
                                          side="data")
                        except Exception:
                            return
                        index += 1

                thread = threading.Thread(target=hammer, daemon=True)
                thread.start()
                time.sleep(0.25)
                os.kill(worker.process.pid, signal.SIGKILL)
                stop.set()
                thread.join(timeout=30)
            worker.process.wait(timeout=30)

            # The never-crashed twin: replay the durable record stream
            # into a fresh in-process service.  (This also truncates any
            # torn tail, exactly as a restarted server would.)
            twin, report = recover_service(wal_dir, attach=False,
                                           num_shards=2)
            if ACK_IS_DURABLE:
                # Every acknowledged write survived the SIGKILL: one
                # register + ``acked`` update records, at least.
                assert report.last_seqno >= 1 + acked
            twin.flush()
            expected = [twin.estimate("ranges", q).estimate
                        for q in queries(SEED)]

            # Restart a worker on the crashed directory: its recovery
            # must land on the same state, bit for bit.
            revived = spawn_worker(wal_dir=wal_dir, wal_sync=SYNC, shards=2)
            try:
                recovery = revived.banner["wal"]["recovery"]
                assert recovery["last_seqno"] == report.last_seqno
                with ServiceClient(revived.host, revived.port) as client:
                    got = [client.estimate("ranges", q).estimate
                           for q in queries(SEED)]
                assert got == expected
            finally:
                revived.stop()
        except BaseException:
            export_artifacts(wal_dir)
            raise
        finally:
            worker.stop()

    def test_checkpoint_then_crash_recovers_from_snapshot_plus_tail(
            self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        worker = spawn_worker(wal_dir=wal_dir, wal_sync=SYNC, shards=2)
        try:
            with ServiceClient(worker.host, worker.port) as client:
                client.register("ranges", family="range", sizes=[256, 256],
                                instances=32, seed=5)
                for index in range(4):
                    client.ingest("ranges", batch(SEED * 2000 + index),
                                  side="data")
                info = client.checkpoint()
                covered = info["wal_seqno"]
                # Post-checkpoint writes live only in the WAL tail.
                client.ingest("ranges", batch(SEED * 2000 + 50), side="data")
                if ACK_IS_DURABLE:
                    client.flush()
            os.kill(worker.process.pid, signal.SIGKILL)
            worker.process.wait(timeout=30)

            if ACK_IS_DURABLE:
                survivors = [s for s, _ in read_wal_records(wal_dir)]
                assert survivors and min(survivors) == covered + 1

            twin, report = recover_service(wal_dir, attach=False,
                                           num_shards=2)
            assert report.base_seqno == covered
            twin.flush()
            expected = [twin.estimate("ranges", q).estimate
                        for q in queries(SEED + 1)]
            revived = spawn_worker(wal_dir=wal_dir, wal_sync=SYNC, shards=2)
            try:
                with ServiceClient(revived.host, revived.port) as client:
                    got = [client.estimate("ranges", q).estimate
                           for q in queries(SEED + 1)]
                assert got == expected
            finally:
                revived.stop()
        except BaseException:
            export_artifacts(wal_dir)
            raise
        finally:
            worker.stop()
