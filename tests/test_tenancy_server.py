"""End-to-end multi-tenant serving over live TCP servers.

The wire-level tenancy contract: the ``auth`` handshake and op gating,
structural cross-tenant isolation (same public estimator name on two
tenants), quota rejections with retry-after hints, per-tenant metric
labels, the ``tenant`` admin verb, client timeouts, the
``--max-frame-bytes`` CLI plumbing, and tenant identity forwarded
through a cluster router to a token-authenticated worker fleet.
"""

import socket
import threading
import time

import pytest

from repro.client import ServiceClient
from repro.cluster import RouterConfig, ThreadedClusterRouter
from repro.cluster.fleet import spawn_worker
from repro.core.domain import Domain
from repro.errors import (
    AuthenticationError,
    ClientTimeoutError,
    FrameTooLargeError,
    QuotaExceededError,
)
from repro.server import ServerConfig, ThreadedServer
from repro.service import EstimationService, synthetic_boxes
from repro.tenancy import TenantQuota, TenantRegistry

DOMAIN = Domain.square(256, dimension=2)

pytestmark = pytest.mark.e2e

ADMIN_TOKEN = "root-secret"
ACME_TOKEN = "acme-secret"
GLOBEX_TOKEN = "globex-secret"


def tenanted_service(*, acme_quota: TenantQuota | None = None
                     ) -> EstimationService:
    service = EstimationService(num_shards=2)
    service.tenant_create("acme", token=ACME_TOKEN, quota=acme_quota)
    service.tenant_create("globex", token=GLOBEX_TOKEN)
    return service


@pytest.fixture()
def tenant_server():
    with ThreadedServer(tenanted_service(),
                        config=ServerConfig(max_batch=16, max_delay=0.002,
                                            admin_token=ADMIN_TOKEN)) as handle:
        yield handle


def client_for(handle, token=None, **kwargs) -> ServiceClient:
    return ServiceClient("127.0.0.1", handle.port, token=token, **kwargs)


def register_join(client: ServiceClient, name: str = "join",
                  seed: int = 7) -> None:
    client.register(name, family="rectangle", sizes=[256, 256],
                    instances=16, seed=seed)


class TestAuthGating:
    def test_unauthenticated_gets_read_only_surface(self, tenant_server):
        with client_for(tenant_server) as client:
            assert client.ping()["ok"]
            assert "repro_server_requests_total" in client.metrics()
            with pytest.raises(AuthenticationError) as info:
                register_join(client)
            assert info.value.code == "auth_required"
            with pytest.raises(AuthenticationError):
                client.stats()

    def test_bad_token_rejected(self, tenant_server):
        with client_for(tenant_server) as client:
            with pytest.raises(AuthenticationError) as info:
                client.auth("not-a-token")
            assert info.value.code == "auth_failed"

    def test_auth_binds_roles(self, tenant_server):
        with client_for(tenant_server) as client:
            reply = client.auth(ACME_TOKEN)
            assert reply["role"] == "tenant" and reply["tenant"] == "acme"
        with client_for(tenant_server) as client:
            assert client.auth(ADMIN_TOKEN)["role"] == "admin"

    def test_tenant_cannot_use_admin_ops(self, tenant_server, tmp_path):
        with client_for(tenant_server, token=ACME_TOKEN) as client:
            with pytest.raises(AuthenticationError):
                client.snapshot(str(tmp_path / "x.sketch"))
            with pytest.raises(AuthenticationError):
                client.tenant("create", "mallory", token="m")

    def test_disabled_tenant_loses_access_mid_connection(self, tenant_server):
        with client_for(tenant_server, token=GLOBEX_TOKEN) as globex, \
                client_for(tenant_server, token=ADMIN_TOKEN) as admin:
            register_join(globex)
            admin.tenant("disable", "globex")
            with pytest.raises(AuthenticationError):
                globex.flush()


class TestWireIsolation:
    def test_same_public_name_is_two_estimators(self, tenant_server):
        boxes = synthetic_boxes(DOMAIN, 50, seed=2)
        with client_for(tenant_server, token=ACME_TOKEN) as acme, \
                client_for(tenant_server, token=GLOBEX_TOKEN) as globex:
            reply = acme.register("join", family="rectangle",
                                  sizes=[256, 256], instances=16, seed=7)
            assert reply["name"] == "join"  # echoed unprefixed
            register_join(globex)
            acme.ingest("join", boxes, side="left")
            acme.ingest("join", boxes, side="right")
            acme.flush()
            got = acme.estimate("join")
            assert got.left_count == 50 and got.right_count == 50
            # globex's estimator of the same public name saw nothing.
            assert "estimate requested before any data" in str(
                _estimate_error(globex, "join"))

    def test_stats_are_scoped_but_admin_sees_namespaces(self, tenant_server):
        with client_for(tenant_server, token=ACME_TOKEN) as acme, \
                client_for(tenant_server, token=GLOBEX_TOKEN) as globex, \
                client_for(tenant_server, token=ADMIN_TOKEN) as admin:
            register_join(acme)
            register_join(globex, name="other")
            stats = acme.stats()
            assert stats["tenant"] == "acme"
            assert sorted(stats["estimators"]) == ["join"]
            assert "tenants" not in stats
            full = admin.stats()
            assert sorted(full["estimators"]) == ["acme/join", "globex/other"]
            assert full["tenants"]["tenants"] == 2

    def test_unregister_is_scoped(self, tenant_server):
        with client_for(tenant_server, token=ACME_TOKEN) as acme, \
                client_for(tenant_server, token=GLOBEX_TOKEN) as globex:
            register_join(acme)
            register_join(globex)
            globex.unregister("join")
            assert sorted(acme.stats()["estimators"]) == ["join"]


def _estimate_error(client: ServiceClient, name: str) -> Exception:
    with pytest.raises(Exception) as info:
        client.estimate(name)
    return info.value


class TestQuotas:
    def test_ingest_quota_rejects_with_retry_after(self):
        quota = TenantQuota(ingest_boxes_per_sec=10.0, ingest_burst_boxes=10.0)
        service = tenanted_service(acme_quota=quota)
        config = ServerConfig(max_batch=16, max_delay=0.002,
                              admin_token=ADMIN_TOKEN)
        with ThreadedServer(service, config=config) as handle:
            boxes = synthetic_boxes(DOMAIN, 10, seed=3)
            with client_for(handle, token=ACME_TOKEN) as acme:
                register_join(acme)
                acme.ingest("join", boxes, side="left")
                with pytest.raises(QuotaExceededError) as info:
                    acme.ingest("join", boxes, side="left")
                assert info.value.retry_after > 0.0
                # The well-behaved tenant is untouched by acme's rejection.
                with client_for(handle, token=GLOBEX_TOKEN) as globex:
                    register_join(globex)
                    globex.ingest("join", boxes, side="left")
                exposition = acme.metrics()
            assert ('repro_server_tenant_quota_rejected_total{tenant="acme"} 1'
                    in exposition)
            assert ('repro_server_tenant_requests_total'
                    '{tenant="globex",op="ingest"} 1' in exposition)

    def test_quota_update_takes_effect_live(self):
        quota = TenantQuota(ingest_boxes_per_sec=5.0, ingest_burst_boxes=5.0)
        service = tenanted_service(acme_quota=quota)
        config = ServerConfig(max_batch=16, max_delay=0.002,
                              admin_token=ADMIN_TOKEN)
        with ThreadedServer(service, config=config) as handle:
            boxes = synthetic_boxes(DOMAIN, 40, seed=4)
            with client_for(handle, token=ACME_TOKEN) as acme, \
                    client_for(handle, token=ADMIN_TOKEN) as admin:
                register_join(acme)
                # The debt model admits one oversized batch; the debt then
                # blocks the next one.
                acme.ingest("join", boxes, side="left")
                with pytest.raises(QuotaExceededError):
                    acme.ingest("join", boxes, side="left")
                admin.tenant("update", "acme",
                             quota={"ingest_boxes_per_sec": 1e6,
                                    "ingest_burst_boxes": 1e6})
                acme.ingest("join", boxes, side="left")


class TestTenantVerb:
    def test_admin_lifecycle_over_the_wire(self, tenant_server):
        with client_for(tenant_server, token=ADMIN_TOKEN) as admin:
            created = admin.tenant("create", "initech", token="in-tok",
                                   quota={"share": 2})
            assert created["record"]["quota"]["share"] == 2
            assert admin.tenant("list")["tenants"]["tenants"] == 3
            described = admin.tenant("describe", "initech")
            assert described["record"]["tenant_id"] == "initech"
            admin.tenant("remove", "initech")
            assert "initech" not in admin.tenant("list")["tenants"]["ids"]
        with client_for(tenant_server) as client:
            with pytest.raises(AuthenticationError):
                client.auth("in-tok")

    def test_tenant_may_only_describe_itself(self, tenant_server):
        with client_for(tenant_server, token=ACME_TOKEN) as acme:
            described = acme.tenant("describe")
            assert described["record"]["tenant_id"] == "acme"
            assert "token_hash" not in described["record"]
            with pytest.raises(AuthenticationError):
                acme.tenant("describe", "globex")


class TestTenantCli:
    def test_tenant_verb_lifecycle(self, tenant_server, capsys):
        import json as jsonlib

        from repro.cli import main

        addr = f"127.0.0.1:{tenant_server.port}"
        assert main(["tenant", "create", "--connect", addr,
                     "--token", ADMIN_TOKEN, "--tenant", "initech",
                     "--tenant-token", "in-tok",
                     "--quota", '{"share": 2}']) == 0
        created = jsonlib.loads(capsys.readouterr().out)
        assert created["record"]["quota"]["share"] == 2
        assert main(["tenant", "list", "--connect", addr,
                     "--token", ADMIN_TOKEN, "--json"]) == 0
        listing = capsys.readouterr().out
        assert listing.count("\n") == 1  # --json is one compact line
        assert "initech" in jsonlib.loads(listing)["tenants"]["ids"]
        # A tenant token gets its own self-describe, hash withheld.
        assert main(["tenant", "describe", "--connect", addr,
                     "--token", "in-tok"]) == 0
        described = jsonlib.loads(capsys.readouterr().out)
        assert described["record"]["tenant_id"] == "initech"
        assert "token_hash" not in described["record"]
        assert main(["tenant", "remove", "--connect", addr,
                     "--token", ADMIN_TOKEN, "--tenant", "initech"]) == 0
        capsys.readouterr()

    def test_bad_quota_json_is_a_clean_error(self, tenant_server, capsys):
        from repro.cli import main

        addr = f"127.0.0.1:{tenant_server.port}"
        assert main(["tenant", "create", "--connect", addr,
                     "--token", ADMIN_TOKEN, "--tenant", "x",
                     "--tenant-token", "t", "--quota", "not json"]) == 1
        assert "--quota must be a JSON object" in capsys.readouterr().err


class TestSingleTenantBitIdentical:
    def test_tenant_namespace_matches_untenanted_server(self):
        """Same spec + same ingests => bit-identical estimates, tenancy on
        or off (the acceptance invariant: namespacing changes routing,
        never estimator state)."""
        boxes_left = synthetic_boxes(DOMAIN, 120, seed=11)
        boxes_right = synthetic_boxes(DOMAIN, 120, seed=12)

        def drive(client: ServiceClient) -> tuple:
            register_join(client)
            client.ingest("join", boxes_left, side="left")
            client.ingest("join", boxes_right, side="right")
            client.flush()
            result = client.estimate("join")
            return result.estimate, result.left_count, result.right_count

        plain_config = ServerConfig(max_batch=16, max_delay=0.002)
        with ThreadedServer(EstimationService(num_shards=2),
                            config=plain_config) as plain:
            with client_for(plain) as client:
                expected = drive(client)
        tenant_config = ServerConfig(max_batch=16, max_delay=0.002,
                                     admin_token=ADMIN_TOKEN)
        with ThreadedServer(tenanted_service(), config=tenant_config) as handle:
            with client_for(handle, token=ACME_TOKEN) as client:
                assert drive(client) == expected


class TestClientTimeouts:
    def test_read_timeout_raises_typed_error(self):
        """A server that accepts but never replies trips the read deadline."""
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        stop = threading.Event()

        def silent_accept():
            listener.settimeout(0.2)
            conns = []
            while not stop.is_set():
                try:
                    conns.append(listener.accept()[0])
                except socket.timeout:
                    continue
            for conn in conns:
                conn.close()

        thread = threading.Thread(target=silent_accept, daemon=True)
        thread.start()
        try:
            client = ServiceClient("127.0.0.1", port, timeout=0.5)
            started = time.monotonic()
            with pytest.raises(ClientTimeoutError):
                client.ping()
            # Timeouts are never retried: one deadline, not retries x deadline.
            assert time.monotonic() - started < 5.0
            client.close()
        finally:
            stop.set()
            thread.join(timeout=5)
            listener.close()

    def test_connect_timeout_raises_typed_error(self):
        # A full accept backlog turns connect() into a hang; the client
        # must surface it as ClientTimeoutError within its budget.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(0)
        port = listener.getsockname()[1]
        fillers = []
        try:
            # Saturate the backlog so later connects stay pending.
            for _ in range(32):
                filler = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                filler.setblocking(False)
                try:
                    filler.connect(("127.0.0.1", port))
                except BlockingIOError:
                    pass
                fillers.append(filler)
            # The client connects eagerly, so the constructor itself trips.
            with pytest.raises(ClientTimeoutError):
                ServiceClient("127.0.0.1", port, connect_timeout=0.3,
                              read_timeout=0.3)
        finally:
            for filler in fillers:
                filler.close()
            listener.close()


class TestMaxFrameBytes:
    def test_cli_flag_limits_both_wire_formats(self):
        worker = spawn_worker(shards=2,
                              extra_args=("--max-frame-bytes", "4096"))
        try:
            # ~9.6 KB of boxes: over the 4 KB limit but small enough for
            # the binary path to drain and answer with a structured error.
            big = synthetic_boxes(DOMAIN, 300, seed=5)
            for wire in ("ndjson", "binary"):
                with ServiceClient(worker.host, worker.port,
                                   wire=wire) as client:
                    register_join(client, name=f"r-{wire}")
                    with pytest.raises(FrameTooLargeError):
                        client.ingest(f"r-{wire}", big, side="left")
                    # The connection survives with a structured error.
                    assert client.ping()["ok"]
        finally:
            worker.stop()


class TestClusterTenancy:
    def test_tenant_identity_flows_through_the_router(self):
        workers = [spawn_worker(shards=2,
                                extra_args=("--admin-token", "fleet-secret"))
                   for _ in range(2)]
        registry = TenantRegistry()
        config = RouterConfig(admin_token=ADMIN_TOKEN,
                              worker_token="fleet-secret")
        try:
            addresses = [(w.host, w.port) for w in workers]
            with ThreadedClusterRouter(addresses, config=config,
                                       start_heartbeat=False,
                                       registry=registry) as handle:
                with ServiceClient("127.0.0.1", handle.port,
                                   token=ADMIN_TOKEN) as admin:
                    admin.tenant("create", "acme", token=ACME_TOKEN)
                    admin.tenant("create", "globex", token=GLOBEX_TOKEN)
                boxes = synthetic_boxes(DOMAIN, 80, seed=6)
                with ServiceClient("127.0.0.1", handle.port,
                                   token=ACME_TOKEN) as acme:
                    register_join(acme)
                    acme.ingest("join", boxes, side="left")
                    acme.ingest("join", boxes, side="right")
                    acme.flush()
                    result = acme.estimate("join")
                    assert result.left_count == 80
                    assert result.right_count == 80
                with ServiceClient("127.0.0.1", handle.port,
                                   token=GLOBEX_TOKEN) as globex:
                    register_join(globex)
                    globex.flush()
                    assert "before any data" in str(
                        _estimate_error(globex, "join"))
                with ServiceClient("127.0.0.1", handle.port,
                                   token=ADMIN_TOKEN) as admin:
                    stats = admin.stats()
                    assert sorted(stats["estimators"]) == [
                        "acme/join", "globex/join"]
                    exposition = admin.metrics()
                assert ('repro_cluster_tenant_requests_total{tenant="acme"}'
                        in exposition)
                # Unauthenticated data-plane access is refused at the edge.
                with ServiceClient("127.0.0.1", handle.port) as anon:
                    with pytest.raises(AuthenticationError):
                        anon.stats()
        finally:
            for worker in workers:
                worker.stop()
