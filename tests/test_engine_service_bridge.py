"""Tests for sourcing engine synopses from a running sketch service."""

import pytest

from repro.data import synthetic
from repro.engine import Catalog, Optimizer, ServiceSynopses, SynopsisManager
from repro.engine.cost import CostModel
from repro.engine.query import JoinQuery
from repro.errors import EngineError
from repro.geometry.rectangle import Rect
from repro.service import EstimationService


@pytest.fixture
def catalog(rng, domain_2d):
    catalog = Catalog(domain_2d)
    for name in ("R", "S", "T"):
        catalog.create(name, boxes=synthetic.generate_rectangles(120, domain_2d,
                                                                 rng=rng))
    return catalog


class TestServiceSynopses:
    def test_matches_classic_synopsis_manager(self, catalog, domain_2d):
        """Sharded, service-backed estimates equal the in-process ones."""
        classic = SynopsisManager(domain_2d, num_instances=64, seed=9)
        bridged = ServiceSynopses(domain_2d, num_instances=64, seed=9,
                                  num_shards=4)
        left, right = catalog.get("R"), catalog.get("S")
        assert (bridged.estimated_join_cardinality(left, right)
                == classic.estimated_join_cardinality(left, right))

    def test_mutations_flow_through_service(self, rng, catalog, domain_2d):
        synopses = ServiceSynopses(domain_2d, num_instances=32, seed=2)
        left, right = catalog.get("R"), catalog.get("S")
        view = synopses.join_sketch(left, right)
        assert view.left_count == 120
        extra = synthetic.generate_rectangles(30, domain_2d, rng=rng)
        left.insert(extra)
        assert synopses.join_sketch(left, right).left_count == 150
        left.delete(extra)
        assert synopses.join_sketch(left, right).left_count == 120

    def test_optimizer_runs_on_service_synopses(self, catalog, domain_2d):
        synopses = ServiceSynopses(domain_2d, num_instances=32, seed=1)
        optimizer = Optimizer(catalog, synopses, CostModel())
        plan = optimizer.plan_join(JoinQuery(("R", "S", "T")))
        assert set(plan.order) == {"R", "S", "T"}
        assert plan.estimated_cost >= 0.0

    def test_empty_relation_short_circuits(self, catalog, domain_2d):
        catalog.create("empty")
        synopses = ServiceSynopses(domain_2d, num_instances=16, seed=1)
        assert synopses.estimated_join_cardinality(catalog.get("empty"),
                                                   catalog.get("R")) == 0.0

    def test_self_join_rejected(self, catalog, domain_2d):
        synopses = ServiceSynopses(domain_2d, num_instances=16, seed=1)
        with pytest.raises(EngineError):
            synopses.join_sketch_name(catalog.get("R"), catalog.get("R"))

    def test_range_sketch_maintained(self, rng, catalog, domain_2d):
        synopses = ServiceSynopses(domain_2d, num_instances=32, seed=3)
        relation = catalog.get("R")
        query = Rect.from_bounds((0, 0), (255, 255))
        estimate = synopses.estimated_range_cardinality(relation, query)
        assert estimate >= 0.0
        relation.insert(synthetic.generate_rectangles(10, domain_2d, rng=rng))
        assert synopses.range_sketch(relation).count == 130

    def test_shared_external_service(self, catalog, domain_2d):
        """Several catalogs' synopses can live inside one service process."""
        service = EstimationService(num_shards=2)
        synopses = catalog.service_synopses(service, num_instances=16, seed=4)
        synopses.estimated_join_cardinality(catalog.get("R"), catalog.get("S"))
        assert any(name.startswith("join::R::S") for name in service.names())
        assert synopses.service is service

    def test_adopts_estimators_of_a_restored_service(self, catalog, domain_2d):
        """A snapshot-restored service must be usable by fresh synopses."""
        synopses = ServiceSynopses(domain_2d, num_instances=16, seed=2)
        left, right = catalog.get("R"), catalog.get("S")
        expected = synopses.estimated_join_cardinality(left, right)
        restored = EstimationService.restore(synopses.service.snapshot())
        resumed = ServiceSynopses(domain_2d, service=restored,
                                  num_instances=16, seed=2)
        assert resumed.estimated_join_cardinality(left, right) == expected
        # ... and the adopted estimator keeps tracking relation mutations.
        assert resumed.join_sketch(left, right).left_count == len(left)

    def test_from_snapshot_boots_from_a_binary_checkpoint(self, catalog,
                                                          domain_2d, tmp_path):
        """Optimizer synopses come back from a v2 snapshot file directly."""
        synopses = ServiceSynopses(domain_2d, num_instances=16, seed=2)
        left, right = catalog.get("R"), catalog.get("S")
        expected = synopses.estimated_join_cardinality(left, right)
        path = tmp_path / "synopses.snap"
        synopses.service.save(path)  # auto -> binary v2
        resumed = ServiceSynopses.from_snapshot(path, domain_2d,
                                                num_instances=16, seed=2)
        assert resumed.estimated_join_cardinality(left, right) == expected

    def test_pair_seed_offset_is_process_independent(self):
        """Sketch seeds must not depend on PYTHONHASHSEED (snapshots outlive
        the process, and the seed decides merge compatibility)."""
        from repro.engine.synopses import pair_seed_offset
        import zlib

        assert pair_seed_offset(("R", "S")) == zlib.crc32(b"R::S") % 100_000
        assert pair_seed_offset(("R", "S")) != pair_seed_offset(("S", "R"))
