"""Snapshot + replay recovery: the WAL threaded through service and server.

The durability contract of :mod:`repro.wal` at the service level — every
acknowledged write survives as ``snapshot + durable log tail``, replay is
bit-identical (linear sketches, integer-valued counters), checkpoints
bound the tail, and the server's ``wal``/``reload`` verbs expose the same
machinery over the wire.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.errors import ServiceError
from repro.server import protocol
from repro.service import EstimationService, synthetic_boxes, synthetic_queries
from repro.wal import (
    WalWriter,
    read_wal_records,
    recover_service,
    wal_records_since,
)
from repro.wal.reader import list_segments
from repro.wal.recovery import default_checkpoint_path

from tests.test_server import Connection, start_server

DOMAIN = Domain.square(256, dimension=2)


# Not durable state: "version" is a process-local cache-invalidation
# counter (restore bumps it), "wal_seqno" is a log position.
_EPHEMERAL_KEYS = {"version", "wal_seqno"}


def assert_states_equal(left, right, path=""):
    """Recursive bit-exact comparison of two snapshot state trees."""
    if isinstance(left, dict):
        keys = set(left) - _EPHEMERAL_KEYS
        assert keys == set(right) - _EPHEMERAL_KEYS, f"{path}: keys differ"
        for key in keys:
            assert_states_equal(left[key], right[key], f"{path}/{key}")
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right), f"{path}: lengths differ"
        for index, (a, b) in enumerate(zip(left, right)):
            assert_states_equal(a, b, f"{path}[{index}]")
    elif isinstance(left, np.ndarray):
        assert left.dtype == right.dtype and left.shape == right.shape, path
        assert (left == right).all(), f"{path}: tensor values differ"
    else:
        assert left == right, f"{path}: {left!r} != {right!r}"


def durable_service(wal_dir, **attach_kwargs) -> EstimationService:
    service = EstimationService(num_shards=2, flush_threshold=None)
    service.attach_wal(WalWriter(wal_dir, sync="none"), **attach_kwargs)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=16, seed=5)
    service.register("join", family="rectangle", domain=DOMAIN,
                     num_instances=16, seed=7)
    return service


class TestServiceWalIntegration:
    def test_every_mutation_is_logged(self, tmp_path):
        wal_dir = tmp_path / "wal"
        service = durable_service(wal_dir)
        service.ingest("ranges", synthetic_boxes(DOMAIN, 50, seed=1),
                       side="data")
        service.unregister("join")
        service.detach_wal()
        types = []
        from repro.wal import decode_payload
        for _seqno, payload in read_wal_records(wal_dir):
            types.append(decode_payload(payload)["type"])
        assert types == ["register", "register", "update", "unregister"]

    def test_snapshot_embeds_wal_seqno_only_when_attached(self, tmp_path):
        plain = EstimationService(num_shards=2)
        assert "wal_seqno" not in plain.snapshot()
        service = durable_service(tmp_path / "wal")
        state = service.snapshot()
        assert state["wal_seqno"] == service.wal.last_seqno == 2
        service.detach_wal()

    def test_recovery_without_snapshot_replays_everything(self, tmp_path):
        wal_dir = tmp_path / "wal"
        service = durable_service(wal_dir)
        service.ingest("ranges", synthetic_boxes(DOMAIN, 80, seed=2),
                       side="data")
        expected = service.snapshot(arrays=True)
        service.detach_wal()

        recovered, report = recover_service(wal_dir, num_shards=2)
        assert report.base_seqno == 0 and report.replayed_boxes == 80
        assert recovered.wal is not None
        assert_states_equal(expected, recovered.snapshot(arrays=True))
        recovered.detach_wal()

    def test_checkpoint_truncates_and_recovery_replays_only_tail(
            self, tmp_path):
        wal_dir = tmp_path / "wal"
        snap = tmp_path / "ckpt.sketch"
        service = durable_service(wal_dir, checkpoint_path=snap)
        service.ingest("ranges", synthetic_boxes(DOMAIN, 200, seed=3),
                       side="data")
        info = service.checkpoint()
        assert info["path"] == str(snap) and info["segments_removed"] == 1
        covered = info["wal_seqno"]
        service.ingest("ranges", synthetic_boxes(DOMAIN, 60, seed=4),
                       side="data")
        expected = service.snapshot(arrays=True)
        service.detach_wal()

        assert [s for s, _ in read_wal_records(wal_dir)] == [covered + 1]
        recovered, report = recover_service(wal_dir, snap, num_shards=2)
        assert report.base_seqno == covered
        assert report.replayed_records == 1 and report.replayed_boxes == 60
        assert_states_equal(expected, recovered.snapshot(arrays=True))
        recovered.detach_wal()

    def test_auto_checkpoint_by_appended_boxes(self, tmp_path):
        wal_dir = tmp_path / "wal"
        snap = tmp_path / "auto.sketch"
        service = durable_service(wal_dir, checkpoint_path=snap,
                                  checkpoint_boxes=100)
        for seed in range(4):
            service.ingest("ranges", synthetic_boxes(DOMAIN, 60, seed=seed),
                           side="data")
        # 60+60 crosses the threshold -> checkpoint -> counter resets.
        assert os.path.exists(snap)
        assert service.wal.appended_boxes < 100
        service.detach_wal()

    def test_unregister_supersedes_logged_updates(self, tmp_path):
        wal_dir = tmp_path / "wal"
        service = durable_service(wal_dir)
        service.ingest("join", synthetic_boxes(DOMAIN, 40, seed=5),
                       side="left")
        service.unregister("join")
        expected = service.snapshot(arrays=True)
        service.detach_wal()

        recovered, _report = recover_service(wal_dir, num_shards=2)
        assert "join" not in recovered
        assert_states_equal(expected, recovered.snapshot(arrays=True))
        recovered.detach_wal()

    def test_torn_tail_costs_only_unacknowledged_writes(self, tmp_path):
        wal_dir = tmp_path / "wal"
        service = durable_service(wal_dir)
        service.ingest("ranges", synthetic_boxes(DOMAIN, 50, seed=6),
                       side="data")
        durable = service.snapshot(arrays=True)
        service.detach_wal()
        # A crash mid-append leaves a torn record: simulate with garbage.
        with open(list_segments(wal_dir)[-1], "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef torn record")
        recovered, report = recover_service(wal_dir, num_shards=2)
        assert report.truncated_bytes > 0
        state = recovered.snapshot(arrays=True)
        assert_states_equal(durable, state)
        recovered.detach_wal()

    def test_checkpoint_requires_wal_and_path(self, tmp_path):
        plain = EstimationService(num_shards=2)
        with pytest.raises(ServiceError):
            plain.checkpoint(tmp_path / "x.sketch")
        service = durable_service(tmp_path / "wal")
        with pytest.raises(ServiceError):
            service.checkpoint()  # no path given or configured
        service.detach_wal()

    def test_double_attach_rejected(self, tmp_path):
        service = durable_service(tmp_path / "wal")
        with pytest.raises(ServiceError):
            service.attach_wal(WalWriter(tmp_path / "other"))
        service.detach_wal()


class TestServerWalVerbs:
    def test_wal_fetch_apply_and_describe(self, tmp_path):
        """Log shipping over the wire: fetch a tail, apply it elsewhere."""
        source = durable_service(tmp_path / "src")
        source.ingest("ranges", synthetic_boxes(DOMAIN, 120, seed=8),
                      side="data")
        target = durable_service(tmp_path / "dst")

        async def main():
            src = await start_server(source)
            dst = await start_server(target)
            try:
                a = await Connection.open(src.port)
                b = await Connection.open(dst.port)
                described = await a.round_trip({"op": "wal"})
                tail = await a.round_trip({"op": "wal", "fetch": True,
                                           "since": 2})
                applied = await b.round_trip({"op": "wal",
                                              "apply": tail["data"]})
                await a.close()
                await b.close()
                return described, tail, applied
            finally:
                await src.close()
                await dst.close()

        described, tail, applied = asyncio.run(main())
        assert described["ok"] and described["wal"]["last_seqno"] == 3
        assert tail["ok"] and tail["count"] == 1 and not tail["truncated"]
        assert applied["applied_records"] == 1
        assert applied["applied_boxes"] == 120
        assert applied["source_last_seqno"] == 3
        # The target replayed through its own ingest path -> logged into
        # its own WAL, and the states now agree bit-exactly.
        src_state = source.snapshot(arrays=True)
        dst_state = target.snapshot(arrays=True)
        assert_states_equal(src_state, dst_state)
        source.detach_wal()
        target.detach_wal()

    def test_wal_fetch_without_wal_is_an_error(self):
        service = EstimationService(num_shards=2)

        async def main():
            server = await start_server(service)
            try:
                conn = await Connection.open(server.port)
                reply = await conn.round_trip({"op": "wal", "fetch": True})
                await conn.close()
                return reply
            finally:
                await server.close()

        reply = asyncio.run(main())
        assert not reply["ok"] and "no WAL" in reply["error"]

    def test_reload_replays_wal_tail_so_no_write_is_dropped(self, tmp_path):
        """Acceptance: hot-reload = snapshot + replay, drops no writes."""
        wal_dir = tmp_path / "wal"
        snap = tmp_path / "base.sketch"
        service = durable_service(wal_dir, checkpoint_path=snap)
        service.ingest("ranges", synthetic_boxes(DOMAIN, 150, seed=9),
                       side="data")
        service.checkpoint()
        # Writes after the checkpoint live only in the WAL tail.
        service.ingest("ranges", synthetic_boxes(DOMAIN, 70, seed=10),
                       side="data")
        service.flush()
        expected = service.estimate("ranges",
                                    synthetic_queries(DOMAIN, 1, seed=11))

        async def main():
            server = await start_server(service)
            try:
                conn = await Connection.open(server.port)
                reply = await conn.round_trip({"op": "reload",
                                               "path": str(snap)})
                row = protocol.boxes_to_rows(
                    synthetic_queries(DOMAIN, 1, seed=11))[0]
                estimate = await conn.round_trip(
                    {"op": "estimate", "name": "ranges", "query": row})
                await conn.close()
                return server.service, reply, estimate
            finally:
                await server.close()

        reloaded, reply, estimate = asyncio.run(main())
        assert reply["ok"] and reply["replayed_records"] == 1
        assert reply["replayed_boxes"] == 70
        assert estimate["estimate"] == expected.estimate
        assert reloaded.wal is not None  # durability survives the swap
        reloaded.detach_wal()

    def test_inline_reload_restarts_the_local_lineage(self, tmp_path):
        """A wire-shipped bootstrap truncates the WAL and saves a new base."""
        donor = EstimationService(num_shards=2)
        donor.register("ranges", family="range", domain=DOMAIN,
                       num_instances=16, seed=5)
        donor.ingest("ranges", synthetic_boxes(DOMAIN, 90, seed=12),
                     side="data")
        donor.flush()
        from repro.server.server import _snapshot_bytes
        raw, _seqno = _snapshot_bytes(donor)

        wal_dir = tmp_path / "wal"
        local = durable_service(wal_dir)
        local.ingest("ranges", synthetic_boxes(DOMAIN, 30, seed=13),
                     side="data")

        async def main():
            server = await start_server(local)
            try:
                conn = await Connection.open(server.port)
                reply = await conn.round_trip(
                    {"op": "reload", "data": protocol.pack_bytes(raw)})
                await conn.close()
                return server.service, reply
            finally:
                await server.close()

        fresh, reply = asyncio.run(main())
        assert reply["ok"] and reply["source"] == "inline"
        base = default_checkpoint_path(wal_dir)
        assert reply["recovery_base"] == base and os.path.exists(base)
        # Old-lineage records are gone; future writes log from here.
        assert read_wal_records(wal_dir) == []
        fresh.ingest("ranges", synthetic_boxes(DOMAIN, 10, seed=14),
                     side="data")
        expected = fresh.snapshot(arrays=True)
        fresh.detach_wal()
        recovered, report = recover_service(wal_dir, base, num_shards=2)
        assert report.replayed_boxes == 10
        assert_states_equal(expected, recovered.snapshot(arrays=True))
        recovered.detach_wal()
