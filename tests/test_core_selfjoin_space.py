"""Tests for self-join size computation and space accounting."""

import pytest

from repro.core import space
from repro.core.atomic import Letter, SketchBank, all_words
from repro.core.domain import Domain
from repro.core.selfjoin import (
    dataset_self_join_size,
    estimate_dataset_self_join,
    estimate_self_join,
    self_join_size,
)
from repro.errors import SketchConfigError
from repro.geometry.boxset import BoxSet

from tests.conftest import random_boxes
from tests.helpers import cover_counts


class TestSelfJoinSize:
    def test_single_interval(self):
        domain = Domain(16)
        boxes = BoxSet.from_intervals([(2, 9)])
        cover = domain.dyadic(0).cover(2, 9)
        # Each dyadic interval of the cover is hit exactly once -> SJ = |cover|.
        assert self_join_size(boxes, domain, (Letter.INTERVAL,)) == len(cover)

    def test_duplicated_interval_squares_counts(self):
        domain = Domain(16)
        boxes = BoxSet.from_intervals([(2, 9), (2, 9)])
        cover = domain.dyadic(0).cover(2, 9)
        assert self_join_size(boxes, domain, (Letter.INTERVAL,)) == 4 * len(cover)

    def test_matches_cover_count_helper(self, rng):
        domain = Domain(64)
        boxes = random_boxes(rng, 20, 64, 1)
        for word in [(Letter.INTERVAL,), (Letter.ENDPOINTS,), (Letter.UPPER_POINT,)]:
            counts = cover_counts(boxes, domain, word)
            expected = sum(value ** 2 for value in counts.values())
            assert self_join_size(boxes, domain, word) == pytest.approx(expected)

    def test_two_dimensional_matches_cover_counts(self, rng):
        domain = Domain.square(32, dimension=2)
        boxes = random_boxes(rng, 10, 32, 2)
        word = (Letter.INTERVAL, Letter.ENDPOINTS)
        counts = cover_counts(boxes, domain, word)
        expected = sum(value ** 2 for value in counts.values())
        assert self_join_size(boxes, domain, word) == pytest.approx(expected)

    def test_empty_dataset(self):
        domain = Domain(16)
        assert self_join_size(BoxSet.empty(1), domain, (Letter.INTERVAL,)) == 0.0

    def test_dataset_self_join_sums_words(self, rng):
        domain = Domain.square(32, dimension=2)
        boxes = random_boxes(rng, 10, 32, 2)
        words = all_words([Letter.INTERVAL, Letter.ENDPOINTS], 2)
        expected = sum(self_join_size(boxes, domain, word) for word in words)
        assert dataset_self_join_size(boxes, domain) == pytest.approx(expected)

    def test_lower_max_level_reduces_endpoint_self_join(self, rng):
        base = Domain(256)
        boxes = random_boxes(rng, 60, 256, 1, max_extent=6)
        full = self_join_size(boxes, base, (Letter.ENDPOINTS,))
        restricted = self_join_size(boxes, base.with_max_level(3), (Letter.ENDPOINTS,))
        assert restricted < full

    def test_sketch_estimate_is_close(self, rng):
        domain = Domain(64)
        boxes = random_boxes(rng, 30, 64, 1)
        truth = self_join_size(boxes, domain, (Letter.INTERVAL,))
        bank = SketchBank(domain, [(Letter.INTERVAL,)], num_instances=4000, seed=3)
        bank.insert(boxes)
        estimate = estimate_self_join(bank, (Letter.INTERVAL,))
        assert estimate == pytest.approx(truth, rel=0.25)

    def test_estimate_dataset_self_join_uses_ie_words(self, rng):
        domain = Domain(64)
        boxes = random_boxes(rng, 20, 64, 1)
        bank = SketchBank(domain, [(Letter.INTERVAL,), (Letter.ENDPOINTS,)],
                          num_instances=2000, seed=5)
        bank.insert(boxes)
        truth = dataset_self_join_size(boxes, domain)
        assert estimate_dataset_self_join(bank) == pytest.approx(truth, rel=0.35)


class TestSpaceAccounting:
    def test_words_per_instance(self):
        # 1-d join sketch: 2 counters + half of 4 seed words.
        assert space.sketch_words_per_instance(1) == 4.0
        # 2-d join sketch: 4 counters + half of 8 seed words.
        assert space.sketch_words_per_instance(2) == 8.0

    def test_instances_for_budget_round_trip(self):
        budget = 4096
        instances = space.instances_for_budget(budget, 2)
        assert space.sketch_words(2, instances) <= budget
        assert space.sketch_words(2, instances + 1) > budget

    def test_budget_too_small(self):
        with pytest.raises(SketchConfigError):
            space.instances_for_budget(3, 2)

    def test_histogram_word_formulas(self):
        assert space.euler_histogram_words(6) == 9 * 4096 - 6 * 64 + 1
        assert space.geometric_histogram_words(6) == 4 ** 7

    def test_level_for_budget(self):
        # The paper's "about 36K units" EH corresponds to level 6 (36 481 words).
        assert space.euler_level_for_budget(36_500) == 6
        assert space.geometric_level_for_budget(36_500) == 6
        assert space.geometric_level_for_budget(1_000) == 3

    def test_level_budget_too_small(self):
        with pytest.raises(SketchConfigError):
            space.euler_level_for_budget(2)

    def test_dataset_storage_words(self):
        assert space.dataset_storage_words(1000, 2) == 4000

    def test_required_instances_matches_theorem(self):
        total = space.required_instances_for_guarantee(0.5, 0.25, 10.0, 10.0, 10.0)
        # k1 = ceil(4 * 100 / (0.25 * 100)) = 16, k2 = 4.
        assert total == 64

    def test_words_to_kilowords(self):
        assert space.words_to_kilowords(2500) == 2.5
