"""Property test: batch estimates == scalar estimates, bit for bit.

For every one of the eight estimator families, over randomly drawn
workloads that include deletions, sharding and merged shard views, the
batched estimation path must return *exactly* what a loop of scalar
``estimate`` calls returns — same boosted estimate, same per-instance
values, same group means.  This is the tentpole guarantee of the batched
engine: batching is a pure execution-strategy change, never a numerics
change.

The same holds for persistence: a state round trip through either
snapshot format (v1 JSON or v2 binary, the latter restored through a
read-only memory map) must leave every estimate bit-identical — the
columnar state layer is likewise a pure storage-strategy change.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.boxset import BoxSet
from repro.service import (
    EstimationService,
    EstimatorSpec,
    load_snapshot,
    save_snapshot,
)

#: Family -> (domain sizes, update sides, extra spec options).
FAMILY_CASES = {
    "interval": ((64,), ("left", "right"), {}),
    "rectangle": ((32, 32), ("left", "right"), {}),
    "hyperrect": ((16, 16, 16), ("left", "right"), {}),
    "extended_overlap": ((32, 32), ("left", "right"), {}),
    "common_endpoint": ((32, 32), ("left", "right"), {}),
    "containment": ((32, 32), ("outer", "inner"), {}),
    "epsilon": ((32, 32), ("left", "right"), {"epsilon": 2}),
    "range": ((32, 32), ("data",), {}),
}

NUM_INSTANCES = 9  # 3 groups of 3 under split_instances


def _boxes(rng: np.random.Generator, count: int, sizes: tuple[int, ...],
           *, degenerate: bool) -> BoxSet:
    if degenerate:
        lows = np.column_stack(
            [rng.integers(0, size, size=count) for size in sizes])
        return BoxSet(lows, lows.copy(), validate=False)
    # Proper boxes (hi > lo in every dimension): the endpoint-transform
    # families shrink the right input, which cannot represent lo == hi.
    lows = np.column_stack(
        [rng.integers(0, size - 1, size=count) for size in sizes])
    extents = np.column_stack(
        [rng.integers(1, max(2, size // 3), size=count) for size in sizes])
    highs = np.minimum(lows + extents, np.asarray(sizes, dtype=np.int64) - 1)
    return BoxSet(lows, highs, validate=False)


workload = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "num_shards": st.integers(min_value=1, max_value=3),
    "inserts": st.integers(min_value=2, max_value=40),
    "delete_fraction": st.floats(min_value=0.0, max_value=0.75),
    "num_queries": st.integers(min_value=1, max_value=6),
})


@pytest.mark.parametrize("family", sorted(FAMILY_CASES))
@settings(max_examples=12, deadline=None)
@given(case=workload)
def test_batch_equals_scalar_on_merged_shard_views(family, case):
    sizes, sides, options = FAMILY_CASES[family]
    rng = np.random.default_rng(case["seed"])
    degenerate = family == "epsilon"

    service = EstimationService(num_shards=case["num_shards"],
                                flush_threshold=None)
    spec = EstimatorSpec.create(family, sizes, NUM_INSTANCES,
                                seed=case["seed"] % 1000, **options)
    service.register("est", spec)

    for side in sides:
        inserted = _boxes(rng, case["inserts"], sizes, degenerate=degenerate)
        service.ingest("est", inserted, side=side, kind="insert")
        # Delete a prefix of what this side saw: deletes meet their inserts
        # on the same shard (deterministic routing), keeping every shard a
        # valid linear summary.
        deletions = int(case["delete_fraction"] * (case["inserts"] - 1))
        if deletions:
            service.ingest("est", inserted[:deletions], side=side, kind="delete")
    service.flush()

    if family == "range":
        queries = _boxes(rng, case["num_queries"], sizes, degenerate=False)
        batch = service.estimate_batch("est", queries)
        scalars = [service.estimate("est", queries[j])
                   for j in range(len(queries))]
    else:
        queries = [None] * case["num_queries"]
        batch = service.estimate_batch("est", queries)
        scalars = [service.estimate("est") for _ in queries]

    assert len(batch) == case["num_queries"]
    for scalar, batched in zip(scalars, batch):
        assert scalar.estimate == batched.estimate
        assert np.array_equal(scalar.instance_values, batched.instance_values)
        assert np.array_equal(scalar.group_means, batched.group_means)
        assert scalar.left_count == batched.left_count
        assert scalar.right_count == batched.right_count

    # The merged view the service answered from must itself agree with its
    # own batch kernel when driven directly (store-level equivalence).
    direct = service.store.estimate_batch(
        "est", queries if family == "range" else len(queries))
    assert [r.estimate for r in direct] == [r.estimate for r in batch]

    # Persistence equivalence: a round trip through BOTH snapshot formats
    # (v1 JSON lists and v2 binary tensors, the latter restored through a
    # read-only memory map) must leave every estimate bit-identical.
    with tempfile.TemporaryDirectory(prefix="repro-snap-") as tmp:
        for filename, fmt in (("svc.json", "json"), ("svc.snap", "binary")):
            path = os.path.join(tmp, filename)
            save_snapshot(service, path, format=fmt)
            restored = load_snapshot(path)
            if family == "range":
                round_tripped = restored.estimate_batch("est", queries)
            else:
                round_tripped = restored.estimate_batch("est", len(queries))
            for before, after in zip(batch, round_tripped):
                assert after.estimate == before.estimate
                assert np.array_equal(after.instance_values,
                                      before.instance_values)
                assert np.array_equal(after.group_means, before.group_means)
