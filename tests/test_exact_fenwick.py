"""Tests for the Fenwick tree substrate."""

import numpy as np
import pytest

from repro.errors import DomainError
from repro.exact.fenwick import FenwickTree


class TestFenwickTree:
    def test_size_must_be_positive(self):
        with pytest.raises(DomainError):
            FenwickTree(0)

    def test_empty_tree_prefix_sums_are_zero(self):
        tree = FenwickTree(8)
        assert tree.prefix_sum(-1) == 0
        assert tree.prefix_sum(7) == 0
        assert tree.total() == 0

    def test_single_update(self):
        tree = FenwickTree(10)
        tree.add(3)
        assert tree.prefix_sum(2) == 0
        assert tree.prefix_sum(3) == 1
        assert tree.prefix_sum(9) == 1

    def test_position_out_of_range(self):
        tree = FenwickTree(4)
        with pytest.raises(DomainError):
            tree.add(4)
        with pytest.raises(DomainError):
            tree.add(-1)

    def test_negative_delta_removes(self):
        tree = FenwickTree(4)
        tree.add(2, 5)
        tree.add(2, -3)
        assert tree.prefix_sum(3) == 2

    def test_range_sum(self):
        tree = FenwickTree(10)
        for position in (1, 3, 3, 7):
            tree.add(position)
        assert tree.range_sum(0, 2) == 1
        assert tree.range_sum(3, 3) == 2
        assert tree.range_sum(4, 9) == 1
        assert tree.range_sum(5, 4) == 0

    def test_prefix_sum_clamps_large_positions(self):
        tree = FenwickTree(4)
        tree.add(3)
        assert tree.prefix_sum(100) == 1

    def test_matches_naive_counts(self, rng):
        size = 64
        tree = FenwickTree(size)
        reference = np.zeros(size, dtype=np.int64)
        positions = rng.integers(0, size, size=300)
        deltas = rng.integers(-2, 3, size=300)
        for position, delta in zip(positions, deltas):
            tree.add(int(position), int(delta))
            reference[position] += delta
        for query in rng.integers(0, size, size=50):
            assert tree.prefix_sum(int(query)) == int(reference[: query + 1].sum())
