"""End-to-end tests: ServiceClient and the CLI against a live TCP server."""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.client import RemoteEstimate, ServiceClient
from repro.core.domain import Domain
from repro.errors import OverloadedError, ProtocolError, ServerError
from repro.server import ServerConfig, ThreadedServer
from repro.service import EstimationService, synthetic_boxes, synthetic_queries

from repro.cli import main

DOMAIN = Domain.square(256, dimension=2)

pytestmark = pytest.mark.e2e


def make_service(*, data: int = 400) -> EstimationService:
    service = EstimationService(num_shards=2)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=32, seed=5)
    service.register("join", family="rectangle", domain=DOMAIN,
                     num_instances=16, seed=7)
    service.ingest("ranges", synthetic_boxes(DOMAIN, data, seed=1), side="data")
    service.ingest("join", synthetic_boxes(DOMAIN, data, seed=2), side="left")
    service.ingest("join", synthetic_boxes(DOMAIN, data, seed=3), side="right")
    service.flush()
    return service


@pytest.fixture()
def running_server():
    service = make_service()
    with ThreadedServer(service,
                        config=ServerConfig(max_batch=16,
                                            max_delay=0.002)) as handle:
        yield handle


class TestServiceClient:
    def test_sixty_four_concurrent_estimates_bit_identical(self, running_server):
        """Acceptance: 64 concurrent estimates, coalesced, bit-identical."""
        service = running_server.service
        queries = synthetic_queries(DOMAIN, 64, seed=17)
        expected = [service.estimate("ranges", queries[i]).estimate
                    for i in range(64)]
        base_batches = service.stats.batch_estimates

        results: dict[int, float] = {}
        errors: list[Exception] = []

        def worker(worker_id: int, span: range) -> None:
            try:
                with ServiceClient("127.0.0.1", running_server.port) as client:
                    got = client.estimate_many("ranges", queries[span.start:
                                                                 span.stop])
                    for offset, result in enumerate(got):
                        results[span.start + offset] = result.estimate
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker,
                                    args=(w, range(w * 16, (w + 1) * 16)))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert [results[i] for i in range(64)] == expected
        engine_calls = service.stats.batch_estimates - base_batches
        assert engine_calls < 64  # coalescing happened across connections
        assert service.stats.coalesced_queries >= 64

    def test_client_verbs_round_trip(self, running_server, tmp_path):
        with ServiceClient("127.0.0.1", running_server.port) as client:
            assert client.ping()["version"] == 1
            reply = client.register("extra", family="range", sizes=[64, 64],
                                    instances=8, seed=2)
            assert reply["spec"]["family"] == "range"
            assert client.ingest("extra", [[0, 0, 5, 5], [2, 2, 9, 9]],
                                 side="data")["boxes"] == 2
            client.flush()
            result = client.estimate("extra", [0, 0, 63, 63])
            assert isinstance(result, RemoteEstimate)
            assert result.left_count == 2
            assert float(result) == result.estimate
            queryless = client.estimate("join")
            assert queryless.right_count > 0
            stats = client.stats()
            assert "extra" in stats["estimators"]
            assert stats["server"]["queue_depth"] == 0
            text = client.metrics()
            assert text.startswith("# repro sketch server metrics")
            snapshot = tmp_path / "remote.sketch"
            assert client.snapshot(snapshot)["ok"]
            assert EstimationService.load(snapshot).merged_view("extra").count == 2

    def test_client_typed_errors(self, running_server):
        with ServiceClient("127.0.0.1", running_server.port) as client:
            with pytest.raises(ServerError) as info:
                client.estimate("missing")
            assert info.value.code == "bad_request"
            with pytest.raises(ServerError):
                client.reload("/no/such/snapshot/path")
            # The connection survives typed failures.
            assert client.ping()["ok"]

    def test_hot_reload_on_live_client(self, running_server, tmp_path):
        grown = make_service(data=900)
        snapshot = tmp_path / "grown.sketch"
        grown.save(snapshot, format="binary")
        query = synthetic_queries(DOMAIN, 1, seed=23)
        expected = grown.estimate("ranges", query).estimate

        with ServiceClient("127.0.0.1", running_server.port) as client:
            before = client.estimate("ranges", query).estimate
            assert client.reload(snapshot)["ok"]
            after = client.estimate("ranges", query).estimate
        assert before != after
        assert after == expected

    def test_overloaded_error_is_typed(self, running_server):
        # Saturate a tiny standalone server whose engine is blocked.
        service = make_service(data=100)
        release = threading.Event()
        inner = service.estimate_batch

        def blocking(name, batch, **kwargs):
            release.wait(timeout=30)
            return inner(name, batch, **kwargs)

        service.estimate_batch = blocking
        queries = synthetic_queries(DOMAIN, 30, seed=3)
        config = ServerConfig(max_batch=2, max_delay=0.001, max_queue=4)
        with ThreadedServer(service, config=config) as handle:
            try:
                with ServiceClient("127.0.0.1", handle.port) as client:
                    requests = [{"op": "estimate", "name": "ranges",
                                 "query": row}
                                for row in _rows(queries)]
                    # Unblock the engine once the burst has been admitted or
                    # shed; the admitted replies need it to complete.
                    threading.Timer(0.5, release.set).start()
                    responses = client.request_many(requests)
            finally:
                release.set()
        shed = [r for r in responses if not r.get("ok")]
        assert shed and all(r["error_code"] == "overloaded" for r in shed)
        with pytest.raises(OverloadedError):
            from repro.server.protocol import raise_for_response
            raise_for_response(shed[0])

    def test_connection_refused_is_oserror(self):
        with pytest.raises(OSError):
            ServiceClient("127.0.0.1", 1, timeout=2)

    def test_server_gone_raises_protocol_error(self, tmp_path):
        service = make_service(data=50)
        handle = ThreadedServer(service).start()
        client = ServiceClient("127.0.0.1", handle.port, timeout=10)
        client.ping()  # the connection is fully established server-side
        handle.stop()
        with pytest.raises((ProtocolError, OSError)):
            client.estimate("join")
        client.close()


def _rows(boxes):
    from repro.server.protocol import boxes_to_rows

    return boxes_to_rows(boxes)


class TestCliConnect:
    """Satellite: one-shot CLI ops reuse a running server via --connect."""

    def test_estimate_connect_matches_direct(self, running_server, capsys):
        service = running_server.service
        query = synthetic_queries(DOMAIN, 1, seed=31)
        expected = service.estimate("ranges", query).estimate
        row = _rows(query)[0]
        code = main(["estimate", "--connect",
                     f"127.0.0.1:{running_server.port}", "--name", "ranges",
                     "--query", ",".join(map(str, row))])
        assert code == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["estimate"] == expected

    def test_estimate_connect_batch_file(self, running_server, capsys, tmp_path):
        queries = synthetic_queries(DOMAIN, 5, seed=37)
        batch_file = tmp_path / "queries.jsonl"
        batch_file.write_text(
            "\n".join(json.dumps(row) for row in _rows(queries)) + "\n",
            encoding="utf-8")
        code = main(["estimate", "--connect",
                     f"127.0.0.1:{running_server.port}", "--name", "ranges",
                     "--batch-file", str(batch_file)])
        assert code == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.strip().splitlines()]
        service = running_server.service
        expected = [service.estimate("ranges", queries[i]).estimate
                    for i in range(5)]
        assert [entry["estimate"] for entry in lines] == expected
        assert [entry["index"] for entry in lines] == list(range(5))

    def test_ingest_connect_registers_and_streams(self, running_server, capsys):
        target = f"127.0.0.1:{running_server.port}"
        code = main(["ingest", "--connect", target, "--name", "fresh",
                     "--family", "range", "--sizes", "64x64",
                     "--instances", "8", "--count", "25"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["created"] is True and payload["boxes"] == 25
        # Second ingest reuses the registration; conflicting flags fail.
        code = main(["ingest", "--connect", target, "--name", "fresh",
                     "--count", "10"])
        assert code == 0
        capsys.readouterr()
        code = main(["ingest", "--connect", target, "--name", "fresh",
                     "--family", "rectangle", "--sizes", "64x64",
                     "--count", "10"])
        assert code == 1
        assert "already registered" in capsys.readouterr().err

    def test_one_shot_ops_require_a_target(self, capsys):
        assert main(["estimate", "--name", "x"]) == 1
        assert "--connect" in capsys.readouterr().err
        assert main(["ingest", "--name", "x"]) == 1
        assert "--connect" in capsys.readouterr().err

    def test_connect_refused_is_reported(self, capsys):
        assert main(["estimate", "--connect", "127.0.0.1:1",
                     "--name", "x"]) == 1
        assert "cannot connect" in capsys.readouterr().err

    def test_workers_flag_is_offline_only(self, running_server, capsys,
                                           tmp_path):
        batch_file = tmp_path / "queries.jsonl"
        batch_file.write_text("[0, 0, 5, 5]\n", encoding="utf-8")
        code = main(["estimate", "--connect",
                     f"127.0.0.1:{running_server.port}", "--name", "ranges",
                     "--batch-file", str(batch_file), "--workers", "2"])
        assert code == 1
        assert "offline" in capsys.readouterr().err


class TestClientRetry:
    """Satellite: one reconnect-and-retry on dropped connections."""

    def test_idempotent_op_retries_across_server_restart(self):
        service = make_service(data=50)
        handle = ThreadedServer(service).start()
        port = handle.port
        client = ServiceClient("127.0.0.1", port, timeout=10)
        assert client.ping()["ok"]
        handle.stop()
        # Rebind a fresh server on the same port; the client's socket is
        # dead but the next idempotent request heals transparently.
        handle = ThreadedServer(service,
                                config=ServerConfig(port=port)).start()
        try:
            assert client.ping()["ok"]
            assert client.reconnects == 1
            query = synthetic_queries(DOMAIN, 1, seed=11)
            result = client.estimate("ranges", _rows(query)[0])
            assert result.estimate == service.estimate("ranges",
                                                       query).estimate
        finally:
            client.close()
            handle.stop()

    def test_non_idempotent_op_is_never_retried(self):
        from repro.client import IDEMPOTENT_OPS

        assert "ingest" not in IDEMPOTENT_OPS
        assert "register" not in IDEMPOTENT_OPS
        service = make_service(data=50)
        handle = ThreadedServer(service).start()
        client = ServiceClient("127.0.0.1", handle.port, timeout=10)
        client.ping()
        handle.stop()
        # A write on a dead connection surfaces the failure instead of
        # risking a duplicate apply on reconnect.
        with pytest.raises((ProtocolError, OSError)):
            client.ingest("ranges", [[0, 0, 5, 5]], side="data")
        assert client.reconnects == 0
        client.close()


@pytest.mark.skipif(os.name != "posix", reason="POSIX signals")
def test_cli_serve_sigterm_drains_and_snapshots(tmp_path):
    """Satellite: SIGTERM triggers a graceful drain + final snapshot."""
    import signal

    snapshot = tmp_path / "graceful.sketch"
    src_dir = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--listen",
         "127.0.0.1:0", "--snapshot", str(snapshot), "--snapshot-on-exit"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    try:
        banner = json.loads(process.stdout.readline())
        port = int(banner["listening"].rsplit(":", 1)[1])
        with ServiceClient("127.0.0.1", port) as client:
            client.register("r", family="range", sizes=[64, 64],
                            instances=8, seed=1)
            client.ingest("r", [[1, 1, 5, 5], [2, 2, 9, 9]], side="data")
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup on failure
            process.kill()
            process.wait(timeout=30)
    # The final snapshot reflects every acknowledged write.
    restored = EstimationService.load(snapshot)
    assert restored.merged_view("r").count == 2


@pytest.mark.skipif(os.name != "posix", reason="POSIX process management")
def test_cli_serve_listen_subprocess_end_to_end(tmp_path):
    """Acceptance: `repro-spatial serve --listen` + ServiceClient round trip."""
    service = make_service(data=120)
    snapshot = tmp_path / "svc.sketch"
    service.save(snapshot, format="binary")
    query = synthetic_queries(DOMAIN, 1, seed=41)
    expected = service.estimate("ranges", query).estimate

    src_dir = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--snapshot",
         str(snapshot), "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    try:
        banner = json.loads(process.stdout.readline())
        port = int(banner["listening"].rsplit(":", 1)[1])
        assert "ranges" in banner["estimators"]
        with ServiceClient("127.0.0.1", port) as client:
            remote = client.estimate("ranges", _rows(query)[0])
            assert remote.estimate == expected
            assert client.stats()["num_shards"] == service.num_shards
    finally:
        process.terminate()
        process.wait(timeout=30)
