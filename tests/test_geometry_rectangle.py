"""Tests for repro.geometry.rectangle."""

import pytest

from repro.errors import DimensionalityError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rect


@pytest.fixture
def unit_square() -> Rect:
    return Rect.from_bounds((0, 0), (9, 9))


class TestConstruction:
    def test_from_bounds(self):
        rect = Rect.from_bounds((1, 2), (5, 8))
        assert rect.lows == (1, 2)
        assert rect.highs == (5, 8)
        assert rect.dimension == 2

    def test_from_point(self):
        rect = Rect.from_point((4, 7, 2))
        assert rect.is_point
        assert rect.dimension == 3

    def test_interval_constructor(self):
        rect = Rect.interval(3, 9)
        assert rect.dimension == 1
        assert rect.ranges[0] == Interval(3, 9)

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(DimensionalityError):
            Rect.from_bounds((0, 0), (1, 1, 1))

    def test_empty_rect_rejected(self):
        with pytest.raises(DimensionalityError):
            Rect(())


class TestMeasures:
    def test_volume_counts_lattice_points(self, unit_square):
        assert unit_square.volume() == 100

    def test_side_lengths(self):
        assert Rect.from_bounds((0, 0), (4, 9)).side_lengths() == (5, 10)

    def test_center(self):
        assert Rect.from_bounds((0, 0), (4, 8)).center() == (2.0, 4.0)

    def test_corners_of_square(self, unit_square):
        assert set(unit_square.corners()) == {(0, 0), (0, 9), (9, 0), (9, 9)}

    def test_corners_of_degenerate(self):
        assert list(Rect.from_point((3, 3)).corners()) == [(3, 3)]


class TestPredicates:
    def test_overlap_requires_all_dimensions(self, unit_square):
        other = Rect.from_bounds((5, 20), (15, 30))
        assert not unit_square.overlaps(other)
        assert unit_square.overlaps(Rect.from_bounds((5, 5), (15, 15)))

    def test_touching_is_not_strict_overlap(self, unit_square):
        assert not unit_square.overlaps(Rect.from_bounds((9, 0), (15, 9)))
        assert unit_square.overlaps_plus(Rect.from_bounds((9, 0), (15, 9)))

    def test_containment(self, unit_square):
        assert unit_square.contains(Rect.from_bounds((2, 2), (5, 5)))
        assert not unit_square.contains(Rect.from_bounds((2, 2), (15, 5)))

    def test_contains_point(self, unit_square):
        assert unit_square.contains_point((0, 9))
        assert not unit_square.contains_point((10, 5))

    def test_dimension_mismatch_raises(self, unit_square):
        with pytest.raises(DimensionalityError):
            unit_square.overlaps(Rect.interval(0, 5))


class TestOperations:
    def test_intersection(self, unit_square):
        other = Rect.from_bounds((5, 5), (20, 20))
        assert unit_square.intersection(other) == Rect.from_bounds((5, 5), (9, 9))

    def test_intersection_disjoint(self, unit_square):
        assert unit_square.intersection(Rect.from_bounds((20, 20), (30, 30))) is None

    def test_expanded(self):
        rect = Rect.from_bounds((5, 5), (6, 6)).expanded(2)
        assert rect == Rect.from_bounds((3, 3), (8, 8))

    def test_clipped(self, unit_square):
        clipped = unit_square.clipped((5, 5), (20, 20))
        assert clipped == Rect.from_bounds((5, 5), (9, 9))

    def test_translated(self):
        rect = Rect.from_bounds((1, 1), (2, 2)).translated((10, 20))
        assert rect == Rect.from_bounds((11, 21), (12, 22))
