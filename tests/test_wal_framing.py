"""Property-based tests (hypothesis) for the WAL record framing.

The durability contract under test:

* any batch of records round-trips bit-exactly through writer + reader,
* any byte-level truncation of a segment yields exactly the durable
  prefix — never a torn or corrupted record,
* any single-bit corruption of the tail record is detected by the CRC,
  so recovery restores a bit-identical prefix state.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wal.framing import (
    WAL_MAGIC,
    WalFormatError,
    decode_payload,
    encode_record,
    encode_register,
    encode_unregister,
    encode_update,
    iter_buffer_records,
)
from repro.wal.reader import (
    list_segments,
    read_wal_records,
    records_from_tail_bytes,
    scan_segment,
    wal_records_since,
)
from repro.wal.writer import WalWriter

# -- strategies -------------------------------------------------------------------

update_rows = st.integers(min_value=0, max_value=8).flatmap(
    lambda count: st.integers(min_value=1, max_value=3).map(
        lambda dim: (count, 2 * dim)))


def _rows_array(shape, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(-1000, 1000, size=shape, dtype=np.int64)


record_payloads = st.one_of(
    st.tuples(update_rows, st.integers(min_value=0, max_value=2**32 - 1)).map(
        lambda pair: encode_update("est", "left", "insert",
                                   _rows_array(pair[0], pair[1]))),
    st.text(alphabet="abcxyz", min_size=1, max_size=8).map(
        lambda name: encode_register(name, {"family": "range",
                                            "sizes": [256]})),
    st.text(alphabet="abcxyz", min_size=1, max_size=8).map(encode_unregister),
)


# -- round trips ------------------------------------------------------------------


class TestRecordRoundTrip:
    @given(payloads=st.lists(record_payloads, min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_buffer_round_trip(self, payloads):
        buffer = b"".join(encode_record(index + 1, payload)
                          for index, payload in enumerate(payloads))
        decoded = list(iter_buffer_records(buffer))
        assert [seqno for seqno, _, _ in decoded] == list(
            range(1, len(payloads) + 1))
        assert [payload for _, payload, _ in decoded] == payloads
        assert decoded[-1][2] == len(buffer)

    @given(shape=update_rows, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_update_payload_round_trip(self, shape, seed):
        rows = _rows_array(shape, seed)
        event = decode_payload(encode_update("name", "right", "delete", rows))
        assert event["type"] == "update"
        assert event["side"] == "right" and event["kind"] == "delete"
        assert event["rows"].dtype == np.int64
        assert event["rows"].shape == rows.shape
        assert (event["rows"] == rows).all()

    @given(payloads=st.lists(record_payloads, min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_writer_reader_round_trip(self, payloads, tmp_path_factory):
        directory = tmp_path_factory.mktemp("wal")
        with WalWriter(directory, sync="none") as writer:
            for payload in payloads:
                event = decode_payload(payload)
                if event["type"] == "update":
                    writer.append_update(event["name"], event["side"],
                                         event["kind"], event["rows"])
                elif event["type"] == "register":
                    writer.append_register(event["name"], event["spec"])
                else:
                    writer.append_unregister(event["name"])
        records = read_wal_records(directory)
        assert [seqno for seqno, _ in records] == list(
            range(1, len(payloads) + 1))
        assert [payload for _, payload in records] == payloads


# -- truncation and corruption ----------------------------------------------------


class TestTornTail:
    @given(payloads=st.lists(record_payloads, min_size=1, max_size=6),
           cut=st.integers(min_value=1, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_any_truncation_yields_a_clean_prefix(self, payloads, cut,
                                                  tmp_path_factory):
        framed = [encode_record(index + 1, payload)
                  for index, payload in enumerate(payloads)]
        buffer = b"".join(framed)
        cut = min(cut, len(buffer))
        decoded = list(iter_buffer_records(buffer[:len(buffer) - cut]))
        # The survivors are exactly the records whose framed bytes fit
        # wholly inside the truncated buffer — never a partial record.
        offset = 0
        expected = []
        for index, frame in enumerate(framed):
            offset += len(frame)
            if offset <= len(buffer) - cut:
                expected.append((index + 1, payloads[index]))
        assert [(seqno, payload) for seqno, payload, _ in decoded] == expected

    @given(payloads=st.lists(record_payloads, min_size=1, max_size=4),
           bit=st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=50, deadline=None)
    def test_single_bit_flip_in_tail_is_detected(self, payloads, bit):
        buffer = b"".join(encode_record(index + 1, payload)
                          for index, payload in enumerate(payloads))
        tail_start = len(buffer) - len(
            encode_record(len(payloads), payloads[-1]))
        position = tail_start + bit % (len(buffer) - tail_start)
        corrupt = bytearray(buffer)
        corrupt[position] ^= 1 << (bit % 8)
        decoded = list(iter_buffer_records(bytes(corrupt)))
        # The flip lands in the last record: either its own CRC rejects
        # it, or (header-length flips) the reader sees a short/overlong
        # frame.  Every earlier record survives untouched.
        kept = [(seqno, payload) for seqno, payload, _ in decoded]
        expected_prefix = [(index + 1, payload)
                           for index, payload in enumerate(payloads[:-1])]
        assert kept == expected_prefix

    @given(payloads=st.lists(record_payloads, min_size=1, max_size=4),
           cut=st.integers(min_value=1, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_writer_resume_truncates_torn_tail(self, payloads, cut,
                                               tmp_path_factory):
        directory = tmp_path_factory.mktemp("wal")
        with WalWriter(directory, sync="none") as writer:
            for payload in payloads:
                writer.append_register("x", {"p": len(payload)})
        segment = list_segments(directory)[-1]
        size = os.path.getsize(segment)
        keep = max(len(WAL_MAGIC), size - cut)
        with open(segment, "r+b") as handle:
            handle.truncate(keep)
        survivors = scan_segment(segment).records
        with WalWriter(directory, sync="none") as resumed:
            assert resumed.last_seqno == (survivors[-1][0] if survivors
                                          else 0)
            # The torn bytes are gone: the file ends at the durable prefix
            # and a fresh append extends a fully-valid record run.
            assert os.path.getsize(segment) == scan_segment(
                segment).valid_bytes
            next_seqno = resumed.append_unregister("y")
            assert next_seqno == resumed.last_seqno
        records = read_wal_records(directory)
        assert records[-1][0] == next_seqno
        assert [seqno for seqno, _ in records[:-1]] == [
            seqno for seqno, _ in survivors]


# -- shipped tails ----------------------------------------------------------------


class TestShippedTails:
    @given(payloads=st.lists(record_payloads, min_size=1, max_size=6),
           since=st.integers(min_value=0, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_tail_fetch_round_trip(self, payloads, since, tmp_path_factory):
        directory = tmp_path_factory.mktemp("wal")
        with WalWriter(directory, sync="none") as writer:
            for payload in payloads:
                writer.append_register("x", {"p": len(payload)})
        tail = wal_records_since(directory, since)
        expected = [seqno for seqno in range(1, len(payloads) + 1)
                    if seqno > since]
        assert tail.count == len(expected)
        assert not tail.truncated
        decoded = records_from_tail_bytes(tail.data)
        assert [seqno for seqno, _ in decoded] == expected

    def test_shipped_tail_must_be_wholly_intact(self, tmp_path):
        data = encode_record(1, encode_unregister("x"))
        with pytest.raises(WalFormatError):
            records_from_tail_bytes(data + b"torn")

    def test_bad_magic_is_an_error_not_an_empty_log(self, tmp_path):
        bogus = tmp_path / "wal-00000000000000000001.log"
        bogus.write_bytes(b"NOTAWAL\n" + encode_record(1,
                                                       encode_unregister("x")))
        with pytest.raises(WalFormatError):
            scan_segment(bogus)
