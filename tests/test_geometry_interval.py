"""Tests for repro.geometry.interval."""

import pytest

from repro.errors import DomainError
from repro.geometry.interval import Interval


class TestConstruction:
    def test_valid_interval(self):
        interval = Interval(3, 9)
        assert interval.lo == 3
        assert interval.hi == 9

    def test_degenerate_interval_allowed(self):
        assert Interval(5, 5).is_degenerate

    def test_inverted_endpoints_rejected(self):
        with pytest.raises(DomainError):
            Interval(7, 3)

    def test_length_counts_coordinates(self):
        assert Interval(2, 5).length == 4
        assert Interval(4, 4).length == 1

    def test_iteration_yields_endpoints(self):
        assert tuple(Interval(1, 8)) == (1, 8)

    def test_ordering_is_lexicographic(self):
        assert Interval(1, 5) < Interval(2, 3)
        assert Interval(1, 3) < Interval(1, 5)


class TestPredicates:
    def test_contains_point_boundaries(self):
        interval = Interval(10, 20)
        assert interval.contains_point(10)
        assert interval.contains_point(20)
        assert not interval.contains_point(9)
        assert not interval.contains_point(21)

    def test_contains_interval(self):
        assert Interval(0, 10).contains(Interval(2, 8))
        assert Interval(0, 10).contains(Interval(0, 10))
        assert not Interval(0, 10).contains(Interval(5, 12))

    def test_strict_overlap_excludes_touching(self):
        assert Interval(0, 5).overlaps(Interval(4, 9))
        assert not Interval(0, 5).overlaps(Interval(5, 9))
        assert not Interval(0, 5).overlaps(Interval(6, 9))

    def test_strict_overlap_of_identical_intervals(self):
        assert Interval(3, 7).overlaps(Interval(3, 7))

    def test_extended_overlap_includes_touching(self):
        assert Interval(0, 5).overlaps_plus(Interval(5, 9))
        assert not Interval(0, 5).overlaps_plus(Interval(6, 9))

    def test_overlap_is_symmetric(self):
        a, b = Interval(0, 6), Interval(4, 10)
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlaps_plus(b) == b.overlaps_plus(a)


class TestOperations:
    def test_intersection_of_overlapping(self):
        assert Interval(0, 6).intersection(Interval(4, 10)) == Interval(4, 6)

    def test_intersection_of_touching(self):
        assert Interval(0, 5).intersection(Interval(5, 9)) == Interval(5, 5)

    def test_intersection_of_disjoint_is_none(self):
        assert Interval(0, 4).intersection(Interval(6, 9)) is None

    def test_shifted(self):
        assert Interval(2, 5).shifted(10) == Interval(12, 15)

    def test_expanded(self):
        assert Interval(5, 7).expanded(2) == Interval(3, 9)

    def test_expanded_negative_radius_rejected(self):
        with pytest.raises(DomainError):
            Interval(5, 7).expanded(-1)

    def test_clipped(self):
        assert Interval(2, 20).clipped(5, 10) == Interval(5, 10)
        assert Interval(2, 4).clipped(10, 20) is None
