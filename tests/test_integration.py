"""End-to-end integration tests across modules.

These tests mirror the example applications: streaming maintenance of a
join sketch, the query-optimizer workflow and a full small-scale
"figure"-style comparison of SKETCH against the histogram baselines.
"""

import numpy as np

from repro.core.domain import Domain
from repro.core.join_rect import RectangleJoinEstimator
from repro.core.range_query import RangeQueryEstimator
from repro.data import synthetic
from repro.data.reallife import load_real_life_pair
from repro.data.streams import UpdateKind, UpdateStream
from repro.engine.catalog import Catalog
from repro.engine.optimizer import Optimizer
from repro.engine.query import JoinQuery
from repro.engine.synopses import SynopsisManager
from repro.exact.range_query import range_query_count
from repro.exact.rectangle_join import rectangle_join_count
from repro.experiments.harness import adaptive_domain, histogram_errors
from repro.experiments.metrics import relative_error
from repro.geometry.rectangle import Rect


class TestStreamingIntegration:
    def test_sketch_follows_insert_delete_stream(self, rng):
        """A sketch maintained over a stream equals one built on the final state."""
        domain = Domain.square(512, dimension=2)
        objects = synthetic.generate_rectangles(300, domain, rng=rng)
        right = synthetic.generate_rectangles(250, domain, rng=rng)
        stream = UpdateStream(objects, delete_fraction=0.3, warmup_fraction=0.5, seed=9)

        streamed = RectangleJoinEstimator(domain.with_max_level(4), 96, seed=4)
        streamed.insert_right(right)
        for kind, batch in stream.batches(batch_size=32):
            if kind is UpdateKind.INSERT:
                streamed.insert_left(batch)
            else:
                streamed.delete_left(batch)

        final_state = stream.final_state()
        rebuilt = RectangleJoinEstimator(domain.with_max_level(4), 96, seed=4)
        rebuilt.insert_left(final_state)
        rebuilt.insert_right(right)

        assert streamed.left_count == len(final_state)
        assert np.allclose(streamed.instance_values(), rebuilt.instance_values())

    def test_range_sketch_over_stream(self, rng):
        domain = Domain.square(256, dimension=2)
        objects = synthetic.generate_rectangles(250, domain, rng=rng)
        stream = UpdateStream(objects, delete_fraction=0.2, seed=3)
        estimator = RangeQueryEstimator(domain.with_max_level(4), 512, seed=7)
        for kind, batch in stream.batches(batch_size=64):
            if kind is UpdateKind.INSERT:
                estimator.insert(batch)
            else:
                estimator.delete(batch)
        final_state = stream.final_state()
        query = Rect.from_bounds((40, 40), (200, 180))
        truth = range_query_count(final_state, query)
        estimate = estimator.estimate(query).estimate
        assert relative_error(estimate, max(truth, 1)) < 1.0


class TestOptimizerIntegration:
    def test_sketch_driven_plan_is_not_much_worse_than_best(self, rng):
        import itertools

        domain = Domain.square(1024, dimension=2)
        catalog = Catalog(domain)
        catalog.create("big", boxes=synthetic.generate_rectangles(600, domain, rng=rng))
        catalog.create("medium", boxes=synthetic.generate_rectangles(300, domain,
                                                                     skew=0.8, rng=rng))
        catalog.create("small", boxes=synthetic.generate_rectangles(100, domain,
                                                                    skew=0.5, rng=rng))
        synopses = SynopsisManager(domain.with_max_level(5), num_instances=192, seed=5)
        optimizer = Optimizer(catalog, synopses)

        query = JoinQuery(relations=("big", "medium", "small"))
        chosen_execution = optimizer.plan_and_execute(query)

        costs = []
        for order in itertools.permutations(query.relations):
            plan = optimizer._cost_order(tuple(order))
            costs.append(optimizer.execute_plan(plan).comparisons)
        best, worst = min(costs), max(costs)
        assert chosen_execution.comparisons <= worst
        # The chosen plan should stay within a factor of the best plan rather
        # than degenerating to the worst one.
        assert chosen_execution.comparisons <= best * 4 + 1000


class TestEndToEndComparison:
    def test_sketch_and_baselines_on_simulated_real_data(self):
        """A miniature Figure-9-style run: all techniques produce finite errors
        and the sketch's *selectivity* error is small.

        At this tiny scale the true join cardinality is only a few dozen pairs,
        so the relative error of any probabilistic estimator is noisy; the
        selectivity error (absolute deviation divided by |R|*|S|) is the stable
        quantity to assert on.
        """
        left, right, domain = load_real_life_pair("LANDC", "SOIL", scale=0.02, seed=11)
        truth = rectangle_join_count(left, right)
        assert truth > 0

        tuned = adaptive_domain(left, right, domain, seed=1)
        estimator = RectangleJoinEstimator(tuned, num_instances=256, seed=2)
        estimator.insert_left(left)
        estimator.insert_right(right)
        estimate = estimator.estimate().estimate
        baseline = histogram_errors(left, right, domain, truth, budget_words=2500)

        assert np.isfinite(estimate)
        assert np.isfinite(baseline["GH"])
        assert np.isfinite(baseline["EH"])
        selectivity_error = abs(estimate - truth) / (len(left) * len(right))
        assert selectivity_error < 0.05

    def test_quickstart_workflow(self, rng):
        """The README quick-start sequence works end to end."""
        domain = Domain.square(1024, dimension=2)
        left = synthetic.generate_rectangles(800, domain, rng=rng)
        right = synthetic.generate_rectangles(800, domain, rng=rng)
        truth = rectangle_join_count(left, right)

        estimator = RectangleJoinEstimator(domain.with_max_level(4), num_instances=512, seed=1)
        estimator.insert_left(left)
        estimator.insert_right(right)
        result = estimator.estimate()

        assert result.estimate > 0
        assert result.relative_error(truth) < 1.0
        assert 0.0 <= result.selectivity <= 1.0
