"""Test helpers: closed-form expectations of sketch estimators.

The estimator random variable Z of every join estimator is a linear
combination of products ``X_w * Y_w'`` of word counters.  Because the xi
variables are pairwise independent with ``E[xi_a xi_b] = [a == b]``, the
expectation of such a product is

    E[X_w * Y_w'] = sum over dyadic cells  f_w(cell) * g_w'(cell)

where ``f_w`` / ``g_w'`` are the (multiplicity-weighted) cover counts of the
two datasets.  These helpers compute that expectation exactly, which lets
the tests verify the *mathematics* of every estimator (covers, combination
coefficients, endpoint handling) without any sampling noise.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.atomic import Letter, Word
from repro.core.domain import Domain
from repro.core.selfjoin import _letter_cover_ids
from repro.geometry.boxset import BoxSet


def cover_counts(boxes: BoxSet, domain: Domain, word: Word) -> dict[tuple[int, ...], float]:
    """Multiplicity-weighted dyadic-cell counts ``f_w`` for a dataset."""
    counts: dict[tuple[int, ...], float] = defaultdict(float)
    if len(boxes) == 0:
        return counts
    per_dim = []
    offsets = []
    for dim, letter in enumerate(word):
        ids, lengths = _letter_cover_ids(domain, dim, letter, boxes.lows[:, dim],
                                         boxes.highs[:, dim])
        per_dim.append(ids)
        offsets.append(np.concatenate([[0], np.cumsum(lengths)]))
    for box in range(len(boxes)):
        cells = [()]
        for dim in range(domain.dimension):
            ids = per_dim[dim][offsets[dim][box]:offsets[dim][box + 1]]
            cells = [cell + (int(i),) for cell in cells for i in ids]
        for cell in cells:
            counts[cell] += 1.0
    return counts


def expected_counter_product(left: BoxSet, right: BoxSet, domain: Domain,
                             left_word: Word, right_word: Word) -> float:
    """Exact ``E[X_{left_word} * Y_{right_word}]`` for the two datasets."""
    f = cover_counts(left, domain, left_word)
    g = cover_counts(right, domain, right_word)
    smaller, larger = (f, g) if len(f) <= len(g) else (g, f)
    return float(sum(value * larger.get(cell, 0.0) for cell, value in smaller.items()))


def expected_estimator_value(estimator, left: BoxSet, right: BoxSet) -> float:
    """Exact E[Z] of a :class:`PairedSketchJoinEstimator` for given inputs.

    The inputs are the *original* (untransformed) datasets; the helper
    applies the estimator's own coordinate preparation so endpoint
    transformations are exercised exactly as in production.
    """
    prepared_left, left_overrides = estimator._prepare_left(left)
    prepared_right, right_overrides = estimator._prepare_right(right)
    domain = estimator._sketch_domain

    def select(letter: Letter, base: BoxSet, overrides) -> BoxSet:
        if overrides is not None and letter in overrides:
            return overrides[letter]
        return base

    total = 0.0
    for (left_word, right_word), coefficient in estimator._combos.items():
        left_sources = {}
        right_sources = {}
        for letter in set(left_word):
            left_sources[letter] = select(letter, prepared_left, left_overrides)
        for letter in set(right_word):
            right_sources[letter] = select(letter, prepared_right, right_overrides)
        # Every letter of a word may, in principle, use different coordinates;
        # build per-word mixed datasets dimension-wise.
        f = _mixed_cover_counts(left_sources, domain, left_word)
        g = _mixed_cover_counts(right_sources, domain, right_word)
        smaller, larger = (f, g) if len(f) <= len(g) else (g, f)
        total += coefficient * sum(v * larger.get(c, 0.0) for c, v in smaller.items())
    return total


def _mixed_cover_counts(sources: dict[Letter, BoxSet], domain: Domain,
                        word: Word) -> dict[tuple[int, ...], float]:
    counts: dict[tuple[int, ...], float] = defaultdict(float)
    any_source = next(iter(sources.values()))
    count = len(any_source)
    if count == 0:
        return counts
    per_dim = []
    offsets = []
    for dim, letter in enumerate(word):
        boxes = sources[letter]
        ids, lengths = _letter_cover_ids(domain, dim, letter, boxes.lows[:, dim],
                                         boxes.highs[:, dim])
        per_dim.append(ids)
        offsets.append(np.concatenate([[0], np.cumsum(lengths)]))
    for box in range(count):
        cells = [()]
        for dim in range(domain.dimension):
            ids = per_dim[dim][offsets[dim][box]:offsets[dim][box + 1]]
            cells = [cell + (int(i),) for cell in cells for i in ids]
        for cell in cells:
            counts[cell] += 1.0
    return counts
