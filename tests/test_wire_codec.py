"""Tests of the binary wire format: codec, negotiation, and mixed fleets.

Three layers are pinned here:

* the frame codec itself — binary round-trips decode to the same payloads
  the NDJSON path produces (property-based over box batches), and a frame
  truncated or corrupted at *any* byte offset is rejected with a typed
  error instead of garbage;
* the ``hello`` negotiation — upgrade, auto-fallback, refusal when the
  server disables binary framing, and the structured ``frame_too_large``
  error replacing the old silent connection drop;
* mixed-format serving — a binary client and an NDJSON client against one
  server see bit-identical estimates and byte-identical snapshots.
"""

import asyncio
import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import ServiceClient
from repro.core.domain import Domain
from repro.errors import (
    ConnectionLostError,
    FrameTooLargeError,
    ProtocolError,
    ServerError,
)
from repro.server import protocol, wire
from repro.server.runner import ThreadedServer
from repro.server.server import ServerConfig
from repro.service import EstimationService, synthetic_boxes

DOMAIN = Domain.square(256, dimension=2)


def make_service(*, data: int = 300) -> EstimationService:
    service = EstimationService(num_shards=2)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=32, seed=5)
    service.ingest("ranges", synthetic_boxes(DOMAIN, data, seed=1),
                   side="data")
    service.flush()
    return service


def decode_frame_bytes(frame: bytes) -> dict:
    """Decode one complete binary frame from its raw bytes."""
    return wire.read_binary_frame_sync(io.BytesIO(frame))


# -- codec round-trips --------------------------------------------------------------


def test_plain_payload_round_trips():
    payload = {"op": "ping", "ok": True, "nested": {"a": [1, 2.5, None, "x"]}}
    assert decode_frame_bytes(wire.encode_binary(payload)) == payload


def test_tensor_and_bytes_sections_round_trip():
    payload = {
        "op": "estimate",
        "boxes": np.arange(12, dtype=np.int64).reshape(3, 4),
        "state": {"counters": np.linspace(0.0, 1.0, 6).reshape(2, 3),
                  "xi": np.arange(8, dtype=np.uint64).reshape(2, 4)},
        "blobs": [b"raw-bytes", {"inner": b"\x00\xff" * 10}],
    }
    decoded = decode_frame_bytes(wire.encode_binary(payload))
    assert np.array_equal(decoded["boxes"], payload["boxes"])
    assert decoded["boxes"].dtype == np.int64
    assert np.array_equal(decoded["state"]["counters"],
                          payload["state"]["counters"])
    assert np.array_equal(decoded["state"]["xi"], payload["state"]["xi"])
    assert decoded["state"]["xi"].dtype == np.uint64
    assert decoded["blobs"][0] == b"raw-bytes"
    assert decoded["blobs"][1]["inner"] == b"\x00\xff" * 10
    # Tensors decode as zero-copy views over the receive buffer.
    assert not decoded["boxes"].flags.writeable


def test_exotic_dtypes_fall_back_to_json_lists():
    payload = {"op": "x", "small": np.arange(4, dtype=np.int32),
               "flags": np.array([True, False])}
    decoded = decode_frame_bytes(wire.encode_binary(payload))
    assert decoded["small"] == [0, 1, 2, 3]
    assert decoded["flags"] == [True, False]


def test_ndjson_encoder_renders_tensors_and_bytes():
    """json_default keeps NDJSON usable for the same mode-agnostic payloads."""
    payload = {"rows": np.arange(4, dtype=np.int64).reshape(2, 2),
               "blob": b"abc", "n": np.int64(7), "f": np.float64(0.5)}
    decoded = protocol.decode(protocol.encode(payload))
    assert decoded["rows"] == [[0, 1], [2, 3]]
    assert protocol.unpack_bytes(decoded["blob"]) == b"abc"
    assert decoded["n"] == 7 and decoded["f"] == 0.5


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255),
                          st.integers(0, 255), st.integers(0, 255)),
                min_size=1, max_size=40))
def test_binary_boxes_decode_identically_to_ndjson(rows):
    """Property: for any box batch, both wire formats yield the same BoxSet."""
    rows = [[min(a, c), min(b, d), max(a, c), max(b, d)]
            for a, b, c, d in rows]
    tensor = np.asarray(rows, dtype=np.int64)
    binary_request = decode_frame_bytes(wire.encode_binary(
        {"op": "ingest", "boxes": tensor}))
    ndjson_request = protocol.decode(protocol.encode(
        {"op": "ingest", "boxes": rows}))
    from_binary = protocol.boxes_from_rows(binary_request["boxes"], 2)
    from_ndjson = protocol.boxes_from_rows(ndjson_request["boxes"], 2)
    assert np.array_equal(from_binary.lows, from_ndjson.lows)
    assert np.array_equal(from_binary.highs, from_ndjson.highs)


# -- rejection of damaged frames ----------------------------------------------------


def reference_frame() -> bytes:
    return wire.encode_binary({
        "op": "ingest", "name": "ranges",
        "boxes": np.arange(8, dtype=np.int64).reshape(2, 4),
        "blob": b"0123456789",
    })


def test_truncated_frame_rejected_at_every_offset():
    frame = reference_frame()
    for cut in range(len(frame)):
        stream = io.BytesIO(frame[:cut])
        with pytest.raises((ProtocolError, ConnectionLostError)):
            wire.read_binary_frame_sync(stream)


def test_bad_magic_loses_framing():
    frame = bytearray(reference_frame())
    frame[0:4] = b"XXXX"
    with pytest.raises(wire.FramingLostError):
        decode_frame_bytes(bytes(frame))


def test_corrupt_descriptors_rejected():
    base = {"op": "x", "t": np.arange(4, dtype=np.int64)}
    frame = wire.encode_binary(base)
    prefix = frame[:wire.PREFIX_SIZE]
    header_len = int.from_bytes(prefix[4:8], "little")
    header = frame[wire.PREFIX_SIZE:wire.PREFIX_SIZE + header_len]
    body = frame[wire.PREFIX_SIZE + header_len:]

    def rebuilt(header_bytes: bytes, body_bytes: bytes) -> bytes:
        return (wire.FRAME_PREFIX.pack(wire.MAGIC, len(header_bytes),
                                       len(body_bytes))
                + header_bytes + body_bytes)

    # Unsupported dtype kind.
    bad = header.replace(b'"<i8"', b'"<i4"')
    with pytest.raises(ProtocolError):
        decode_frame_bytes(rebuilt(bad, body))
    # Shape larger than the body.
    bad = header.replace(b"[4]", b"[400]")
    with pytest.raises(ProtocolError):
        decode_frame_bytes(rebuilt(bad, body))
    # Negative extent.
    bad = header.replace(b"[4]", b"[-4]")
    with pytest.raises(ProtocolError):
        decode_frame_bytes(rebuilt(bad, body))
    # Path that does not exist in the payload tree.
    bad = header.replace(b'[["t"]', b'[["missing","deep"]')
    with pytest.raises(ProtocolError):
        decode_frame_bytes(rebuilt(bad, body))
    # Undeclared trailing body bytes.
    with pytest.raises(ProtocolError):
        decode_frame_bytes(rebuilt(header, body + b"extra"))


def test_oversized_declared_frame_is_typed_and_recoverable():
    frame = reference_frame()
    with pytest.raises(FrameTooLargeError) as excinfo:
        wire.read_binary_frame_sync(io.BytesIO(frame), max_bytes=32)
    assert excinfo.value.code == "frame_too_large"
    assert excinfo.value.recoverable


# -- negotiation and mixed-format serving -------------------------------------------


def test_hello_negotiation_modes():
    service = make_service()
    with ThreadedServer(service) as server:
        with ServiceClient("127.0.0.1", server.port) as plain:
            assert plain.wire_format == "ndjson"
            plain.ping()
        with ServiceClient("127.0.0.1", server.port, wire="binary") as fast:
            assert fast.wire_format == "binary"
            fast.ping()
        with ServiceClient("127.0.0.1", server.port, wire="auto") as auto:
            assert auto.wire_format == "binary"
            auto.ping()
    with pytest.raises(ProtocolError):
        ServiceClient("127.0.0.1", 1, wire="msgpack")


def test_binary_refused_when_disabled():
    service = make_service()
    config = ServerConfig(port=0, binary_wire=False)
    with ThreadedServer(service, config=config) as server:
        # auto falls back silently...
        with ServiceClient("127.0.0.1", server.port, wire="auto") as auto:
            assert auto.wire_format == "ndjson"
            auto.ping()
        # ...but an explicit binary request surfaces the refusal.
        with pytest.raises(ServerError):
            ServiceClient("127.0.0.1", server.port, wire="binary")


def test_mixed_format_clients_bit_identical():
    service = make_service()
    rng = np.random.default_rng(11)
    lows = rng.integers(0, 200, (500, 2))
    highs = lows + rng.integers(0, 56, (500, 2))
    rows = np.hstack([lows, highs])
    queries = [[0, 0, 200, 200], [10, 10, 90, 90]]
    with ThreadedServer(service) as server:
        with ServiceClient("127.0.0.1", server.port, wire="binary") as fast, \
                ServiceClient("127.0.0.1", server.port) as plain:
            fast.ingest("ranges", rows.tolist(), side="data")
            fast.flush()
            for query in queries:
                assert fast.estimate("ranges", query) == \
                    plain.estimate("ranges", query)
            # Pipelined batches agree too.
            boxes = [[0, 0, 128, 128], [5, 5, 250, 250]]
            assert fast.estimate_many("ranges", boxes) == \
                plain.estimate_many("ranges", boxes)


def test_binary_snapshot_fetch_is_raw_bytes():
    import base64

    service = make_service()
    with ThreadedServer(service) as server:
        with ServiceClient("127.0.0.1", server.port, wire="binary") as fast, \
                ServiceClient("127.0.0.1", server.port) as plain:
            raw = fast.request({"op": "snapshot", "fetch": True})["data"]
            encoded = plain.request({"op": "snapshot", "fetch": True})["data"]
            assert isinstance(raw, bytes) and isinstance(encoded, str)
            assert raw == base64.b64decode(encoded)


def test_wire_metrics_and_stats_exposed():
    service = make_service()
    with ThreadedServer(service) as server:
        with ServiceClient("127.0.0.1", server.port, wire="binary") as fast:
            fast.ping()
            stats = fast.stats()
            formats = stats["server"]["wire"]
            assert {"ndjson", "binary"} <= set(formats)
            for counters in formats.values():
                assert set(counters) == {"frames_in", "bytes_in",
                                         "frames_out", "bytes_out"}
            text = fast.metrics()
            assert 'repro_server_wire_frames_total{format="binary",' \
                   'direction="in"}' in text
            assert 'repro_server_wire_bytes_total{format="ndjson",' \
                   'direction="out"}' in text


def test_ingest_ships_tensor_and_ragged_rows_still_rejected():
    service = make_service()
    with ThreadedServer(service) as server:
        with ServiceClient("127.0.0.1", server.port, wire="binary") as fast:
            fast.ingest("ranges", [[0, 0, 10, 10], [1, 1, 5, 5]], side="data")
            with pytest.raises(ServerError):
                fast.ingest("ranges", [[0, 0, 10, 10], [1, 1]], side="data")


# -- frame_too_large over live connections ------------------------------------------


def test_oversized_binary_frame_keeps_connection_usable():
    service = make_service()
    config = ServerConfig(port=0, max_line_bytes=4096)
    with ThreadedServer(service, config=config) as server:
        with ServiceClient("127.0.0.1", server.port, wire="binary") as fast:
            big = np.zeros((300, 4), dtype=np.int64)  # ~9.6 KB body
            with pytest.raises(FrameTooLargeError):
                fast.request({"op": "ingest", "name": "ranges", "boxes": big,
                              "side": "data"})
            # Length-prefixed framing survives an oversized frame: the same
            # connection keeps serving (no reconnect happened).
            assert fast.ping()["ok"]
            assert fast.reconnects == 0


def test_oversized_ndjson_line_answers_then_hangs_up():
    service = make_service()

    async def main():
        from repro.server.server import SketchServer

        server = SketchServer(service,
                              config=ServerConfig(port=0,
                                                  max_line_bytes=2048))
        await server.start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           server.port)
            writer.write(b"y" * 4096 + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=30)
            reply = protocol.decode(line)
            eof = await asyncio.wait_for(reader.readline(), timeout=30)
            writer.close()
            return reply, eof
        finally:
            await server.close()

    reply, eof = asyncio.run(main())
    assert not reply["ok"] and reply["error_code"] == "frame_too_large"
    assert eof == b""  # NDJSON framing is lost: server hangs up after replying


# -- cluster links ------------------------------------------------------------------


def test_worker_links_negotiate_binary():
    from repro.cluster import ClusterRouter, RouterConfig

    async def main():
        worker = ThreadedServer(make_service())
        worker.start()
        ndjson_worker = ThreadedServer(
            make_service(), config=ServerConfig(port=0, binary_wire=False))
        ndjson_worker.start()
        router = ClusterRouter(config=RouterConfig(port=0))
        try:
            await router.attach("w0", "127.0.0.1", worker.port)
            await router.attach("w1", "127.0.0.1", ndjson_worker.port)
            modes = {info.name: info.link.mode
                     for info in router.manager.workers()}
            return modes
        finally:
            await router.close()
            worker.stop()
            ndjson_worker.stop()

    modes = asyncio.run(main())
    # auto preference: binary against a willing worker, NDJSON fallback
    # against one that refuses — one fleet, mixed formats, same answers.
    assert modes == {"w0": "binary", "w1": "ndjson"}
