"""Cluster scale-out: a consistent-hash router over a worker fleet.

The example stands up three real worker subprocesses (each a full
``repro-spatial serve --listen`` sketch server), wires a
:class:`~repro.cluster.router.ClusterRouter` over them, and shows the
three things the cluster layer adds:

1. **Scatter-gather exactness** — ingest through the router partitions
   boxes across workers by the same shard hash the in-process store uses;
   estimates gather per-worker counter states and reduce them with one
   vectorised merge.  Every answer is bit-identical to a single-node
   service over the same data — sketches are linear, so distribution is
   invisible.
2. **Topology introspection** — the ``cluster_status`` verb reports every
   worker's role, health and generation, plus the slot distribution; the
   ``metrics`` verb aggregates fleet counters under ``repro_cluster_*``.
3. **Replica bootstrap** — a fourth, empty worker joins as a read replica
   of one shard owner: the router ships the owner's binary snapshot over
   the wire, after which reads round-robin across the owner group.

The client side is the ordinary :class:`~repro.client.ServiceClient` —
the router speaks the same NDJSON protocol as a single worker.

Run with::

    python examples/cluster_demo.py
"""

from __future__ import annotations

from repro.client import ServiceClient
from repro.cluster import RouterConfig, ThreadedClusterRouter
from repro.cluster.fleet import LocalFleet
from repro.core.domain import Domain
from repro.service import EstimationService, synthetic_boxes, synthetic_queries

DOMAIN = Domain.square(512, dimension=2)


def main() -> None:
    # A single-node reference service: the cluster must match it exactly.
    reference = EstimationService(num_shards=4)
    reference.register("ranges", family="range", domain=DOMAIN,
                       num_instances=64, seed=11)
    reference.register("join", family="rectangle", domain=DOMAIN,
                       num_instances=32, seed=13)

    with LocalFleet(3) as fleet:
        addresses = ", ".join(w.address for w in fleet.workers)
        print(f"3 workers listening on {addresses}")

        with ThreadedClusterRouter(fleet.addresses(),
                                   config=RouterConfig(num_slots=64),
                                   start_heartbeat=False) as handle:
            print(f"router listening on 127.0.0.1:{handle.port}\n")
            with ServiceClient("127.0.0.1", handle.port) as client:
                # 1. Register + ingest through the router: one logical
                #    service, physically partitioned across the fleet.
                client.register("ranges", family="range", sizes=[512, 512],
                                instances=64, seed=11)
                client.register("join", family="rectangle",
                                sizes=[512, 512], instances=32, seed=13)
                for name, side, seed in (("ranges", "data", 1),
                                         ("join", "left", 2),
                                         ("join", "right", 3)):
                    boxes = synthetic_boxes(DOMAIN, 2_000, seed=seed)
                    client.ingest(name, boxes, side=side)
                    reference.ingest(name, boxes, side=side)
                client.flush()
                reference.flush()

                queries = synthetic_queries(DOMAIN, 4, seed=17)
                print("--- scatter-gather estimates " + "-" * 31)
                for i in range(4):
                    got = client.estimate("ranges", queries[i]).estimate
                    want = reference.estimate("ranges", queries[i]).estimate
                    assert got == want, (got, want)
                    print(f"range query {i}: cluster {got:12,.1f}   "
                          f"single-node {want:12,.1f}   bit-identical")
                got = client.estimate("join").estimate
                want = reference.estimate("join").estimate
                assert got == want, (got, want)
                print(f"join estimate : cluster {got:12,.1f}   "
                      f"single-node {want:12,.1f}   bit-identical")

                # 2. Topology and fleet metrics.
                status = client.cluster_status()
                print("\n--- cluster_status " + "-" * 41)
                for worker in status["workers"]:
                    print(f"{worker['name']:4s} {worker['address']:21s} "
                          f"role={worker['role']:7s} "
                          f"healthy={worker['healthy']}")
                print(f"slots per owner: {status['slots_per_owner']}")

                # 3. Bootstrap a read replica: a fresh, empty worker joins
                #    and receives one owner's snapshot over the wire.
                owner = status["workers"][0]["name"]
                extra = fleet.spawn_extra()
                handle.run(handle.router.bootstrap_replica(
                    "replica-1", extra.host, extra.port, source=owner))
                print(f"\nbootstrapped replica-1 ({extra.address}) "
                      f"from {owner}")
                status = client.cluster_status()
                roles = {w["name"]: w["role"] for w in status["workers"]}
                assert roles["replica-1"] == "replica"
                # Reads now round-robin across the owner group — still
                # bit-identical, from whichever process answers.
                for _ in range(4):
                    got = client.estimate("ranges", queries[0]).estimate
                    assert got == reference.estimate("ranges",
                                                     queries[0]).estimate
                print("4 post-bootstrap reads: all bit-identical")

                print("\n--- fleet metrics (excerpt) " + "-" * 32)
                for line in client.metrics().splitlines():
                    if any(key in line for key in ("workers", "estimate_qps",
                                                   "requests_total")):
                        print(line)

    print("\nfleet stopped; done")


if __name__ == "__main__":
    main()
