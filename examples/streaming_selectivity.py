"""Streaming maintenance: selectivity tracking under inserts AND deletes.

The paper's headline feature over histogram techniques is that spatial
sketches are linear projections: they can be maintained incrementally under
arbitrary insert/delete streams and therefore summarise *streaming* spatial
data.  This example simulates a feed of land-parcel updates (half of the
parcels are later retracted), keeps a rectangle-join sketch up to date, and
periodically compares the estimated join cardinality against the exact
value computed from the current database state.

Run with::

    python examples/streaming_selectivity.py
"""

from __future__ import annotations

import numpy as np

from repro import Domain, RectangleJoinEstimator
from repro.data import synthetic
from repro.data.streams import UpdateKind, UpdateStream
from repro.exact import rectangle_join_count
from repro.geometry.boxset import BoxSet


def main() -> None:
    rng = np.random.default_rng(3)
    domain = Domain.square(4096, dimension=2)

    # A static reference layer (e.g. protected areas) and a streamed layer
    # (e.g. land parcels with corrections/retractions).
    reference = synthetic.generate_rectangles(3_000, domain, skew=0.5, rng=rng)
    parcels = synthetic.generate_rectangles(4_000, domain, rng=rng)
    stream = UpdateStream(parcels, delete_fraction=0.5, warmup_fraction=0.4, seed=17)

    estimator = RectangleJoinEstimator(domain.with_max_level(5), num_instances=384, seed=5)
    estimator.insert_right(reference)

    # Replay the stream, checkpointing every few thousand operations.
    live_lows: list[np.ndarray] = []
    live_highs: list[np.ndarray] = []

    def current_state() -> BoxSet:
        if not live_lows:
            return BoxSet.empty(2)
        return BoxSet(np.array(live_lows), np.array(live_highs), validate=False)

    operations = 0
    checkpoint_every = stream.expected_length() // 6
    print(f"{'operations':>11}  {'|parcels|':>9}  {'estimate':>10}  {'exact':>10}  {'rel.err':>7}")
    for operation in stream:
        box = operation.box
        if operation.kind is UpdateKind.INSERT:
            estimator.insert_left(box)
            live_lows.append(box.lows[0])
            live_highs.append(box.highs[0])
        else:
            estimator.delete_left(box)
            for index in range(len(live_lows)):
                if np.array_equal(live_lows[index], box.lows[0]) and \
                        np.array_equal(live_highs[index], box.highs[0]):
                    del live_lows[index]
                    del live_highs[index]
                    break
        operations += 1
        if operations % checkpoint_every == 0:
            state = current_state()
            exact = rectangle_join_count(state, reference)
            estimate = estimator.estimate().estimate
            error = abs(estimate - exact) / exact if exact else float("nan")
            print(f"{operations:>11}  {len(state):>9}  {estimate:>10,.0f}  "
                  f"{exact:>10,}  {error:>7.3f}")

    print("\nThe sketch never rescans the data: every update touches "
          "O(log^2 n) counters per atomic sketch, deletes included.")


if __name__ == "__main__":
    main()
