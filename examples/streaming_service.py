"""A sharded sketch service ingesting a stream and serving concurrent queries.

The example stands up a 4-shard :class:`~repro.service.EstimationService`
holding a rectangle-join sketch and a range-query sketch, replays a
reproducible insert/delete stream (:mod:`repro.data.streams`) through the
batched ingestion pipeline, and — while ingestion is still running — serves
join and range estimates from merged shard views on a pool of query
threads.  At the end it checkpoints the service to the binary (v2) snapshot
format, verifies that a memory-mapped restore answers identically, and
compares size and restore latency against the v1 JSON format.

Run with::

    python examples/streaming_service.py
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.domain import Domain
from repro.data.streams import UpdateStream
from repro.errors import EstimationError
from repro.exact import range_query_count, rectangle_join_count
from repro.geometry.rectangle import Rect
from repro.experiments.harness import adaptive_domain
from repro.service import EstimationService, StreamDriver, synthetic_boxes


def main() -> None:
    domain = Domain.square(1024, dimension=2)

    # 1. Stream data: the right join input is loaded up front, the left
    #    input arrives as a stream of inserts and deletes.
    left_data = synthetic_boxes(domain, 8_000, seed=1, max_extent_fraction=0.1)
    right_data = synthetic_boxes(domain, 8_000, seed=2, max_extent_fraction=0.1)

    # 2. A service with four hash partitions.  Every registered estimator
    #    keeps one merge-compatible sketch per shard (shared seed spec).
    #    The dyadic maxLevel is tuned from a sample (Section 6.5), exactly
    #    as in examples/quickstart.py — it cuts the estimator variance by
    #    orders of magnitude.
    tuned = adaptive_domain(left_data, right_data, domain, seed=1)
    service = EstimationService(num_shards=4, flush_threshold=2048,
                                max_workers=4)
    service.register("join", family="rectangle", domain=tuned,
                     num_instances=512, seed=42)
    service.register("ranges", family="range", domain=tuned,
                     num_instances=512, seed=43)
    service.ingest("join", right_data, side="right")
    stream = UpdateStream(left_data, delete_fraction=0.25, seed=7)
    print(f"stream: {stream.expected_length():,} operations "
          f"({len(left_data):,} inserts + deletes) into 4 shards")

    # 3. Ingest on one thread, query concurrently on three others.  Merged
    #    views are immutable snapshots, so queries never block ingestion for
    #    longer than one flush.
    queries = [Rect.from_bounds((lo, lo), (lo + 300, lo + 300))
               for lo in (0, 256, 512)]
    done = threading.Event()
    observations: list[tuple[str, float]] = []

    def ingest() -> None:
        driver = StreamDriver(service, "join", side="left", batch_size=256)
        report = driver.drive(stream)
        ranges_driver = StreamDriver(service, "ranges", side="data",
                                     batch_size=256)
        ranges_report = ranges_driver.drive(stream)
        done.set()
        print(f"ingested: join {report.inserts:,}+/{report.deletes:,}- "
              f"ranges {ranges_report.inserts:,}+/{ranges_report.deletes:,}- "
              f"in {report.batches + ranges_report.batches} batches")

    def query(index: int) -> None:
        while not done.is_set():
            # An estimator that has seen no data yet raises EstimationError;
            # a serving front-end reports "no data" and retries.
            try:
                observations.append(("join", service.estimate_cardinality("join")))
                observations.append((
                    "range", service.estimate_cardinality("ranges", queries[index])))
            except EstimationError:
                pass
            time.sleep(0.01)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(ingest)]
        futures += [pool.submit(query, index) for index in range(3)]
        for future in futures:
            future.result()
    elapsed = time.perf_counter() - start
    print(f"concurrent run: {len(observations):,} estimates served while "
          f"ingesting, {elapsed:.2f} s total")

    # 4. Compare the final estimates with exact answers on the survivors.
    survivors = stream.final_state()
    service.flush()
    join_estimate = service.estimate("join")
    join_truth = rectangle_join_count(survivors, right_data)
    print(f"join      : estimate {join_estimate.estimate:12,.0f}   "
          f"exact {join_truth:12,}")
    for query_rect in queries:
        estimate = service.estimate("ranges", query_rect)
        truth = range_query_count(survivors, query_rect)
        print(f"range {query_rect.lows!s:>12}: estimate {estimate.estimate:10,.0f}   "
              f"exact {truth:10,}")

    # 4b. Batched estimation: a whole query batch is answered through one
    #     vectorised kernel (shared dyadic covers, one median-of-means
    #     reduction) — bit-identical to the scalar loop above but many
    #     times faster.  ``workers=2`` would additionally fan sub-batches
    #     out to snapshot-restored worker processes.
    query_batch = synthetic_boxes(tuned, 1_000, seed=9, max_extent_fraction=0.2)
    start = time.perf_counter()
    batch_results = service.estimate_batch("ranges", query_batch)
    batch_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    scalar_results = [service.estimate("ranges", query_batch[i])
                      for i in range(64)]
    scalar_rate = 64 / (time.perf_counter() - start)
    assert all(batch_results[i].estimate == scalar_results[i].estimate
               for i in range(64))
    print(f"batch     : {len(batch_results):,} range queries in "
          f"{batch_elapsed * 1e3:.1f} ms "
          f"({len(batch_results) / batch_elapsed:,.0f} q/s vs "
          f"{scalar_rate:,.0f} q/s scalar), bit-identical results")

    # 5. Checkpoint and restore: the default binary (v2) snapshot stores the
    #    columnar counter tensors raw, so saving is one write per tensor and
    #    restoring memory-maps them back — a restored service answers
    #    bit-identically.  The v1 JSON format remains available for
    #    human-readable checkpoints (and old snapshots keep loading).
    with tempfile.TemporaryDirectory(prefix="repro-svc-") as tmp:
        binary_path = os.path.join(tmp, "service.snap")
        json_path = os.path.join(tmp, "service.json")
        service.save(binary_path)                  # auto -> binary v2
        service.save(json_path, format="json")     # explicit v1
        for path, label in ((binary_path, "binary v2"), (json_path, "JSON v1")):
            start = time.perf_counter()
            restored = EstimationService.load(path)  # format auto-detected
            restore_ms = (time.perf_counter() - start) * 1e3
            assert restored.estimate("join").estimate == join_estimate.estimate
            size_kb = os.path.getsize(path) / 1024
            print(f"snapshot  : {label:9s} {size_kb:7.0f} KiB, restored "
                  f"identically in {restore_ms:6.1f} ms")
    print(f"stats     : {service.stats.as_dict()}")


if __name__ == "__main__":
    main()
