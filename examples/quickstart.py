"""Quick start: estimate a spatial-join selectivity with spatial sketches.

The example builds two synthetic rectangle datasets, summarises each with a
sketch (a few hundred atomic-sketch instances), and compares the estimated
join cardinality and selectivity with the exact answer computed by the
plane-sweep join.  It also shows how Theorem 2 sizes a sketch for a target
(epsilon, phi) guarantee.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import Domain, RectangleJoinEstimator
from repro.core import space
from repro.core.selfjoin import dataset_self_join_size
from repro.data import synthetic
from repro.exact import rectangle_join_count
from repro.experiments.harness import adaptive_domain


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A 4096 x 4096 integer data space and two rectangle datasets.
    domain = Domain.square(4096, dimension=2)
    left = synthetic.generate_rectangles(5_000, domain, rng=rng)
    right = synthetic.generate_rectangles(5_000, domain, rng=rng)

    # 2. Ground truth (plane-sweep join).
    start = time.perf_counter()
    truth = rectangle_join_count(left, right)
    exact_seconds = time.perf_counter() - start
    print(f"exact join cardinality : {truth:,} "
          f"(selectivity {truth / (len(left) * len(right)):.6f}, {exact_seconds:.2f} s)")

    # 3. Pick the dyadic maxLevel from a small sample (Section 6.5) and build
    #    the sketch estimator.  512 instances cost about
    #    space.sketch_words(2, 512) = 4096 words per dataset.
    tuned = adaptive_domain(left, right, domain, seed=1)
    estimator = RectangleJoinEstimator(tuned, num_instances=512, seed=42)

    start = time.perf_counter()
    estimator.insert_left(left)
    estimator.insert_right(right)
    build_seconds = time.perf_counter() - start

    result = estimator.estimate()
    print(f"sketch estimate        : {result.estimate:,.0f} "
          f"(selectivity {result.selectivity:.6f})")
    print(f"relative error         : {result.relative_error(truth):.3f}")
    print(f"sketch memory          : {estimator.storage_words():,.0f} words per dataset "
          f"({build_seconds:.2f} s to build)")

    # 4. Sizing for a guarantee: how many instances would Theorem 2 require
    #    for a 30% error at 99% confidence, given the self-join sizes?
    sj_left = dataset_self_join_size(left, tuned)
    sj_right = dataset_self_join_size(right, tuned)
    required = space.required_instances_for_guarantee(
        epsilon=0.3, phi=0.01, sj_left=sj_left, sj_right=sj_right,
        result_lower_bound=truth)
    print(f"Theorem 2 sizing       : {required:,} instances "
          f"({space.sketch_words(2, required) / 1000:.1f} K words) for eps=0.3, phi=0.01")


if __name__ == "__main__":
    main()
