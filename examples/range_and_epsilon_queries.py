"""Approximate range aggregates and epsilon-join correlation analysis.

Two further query classes from Section 6 of the paper:

* **Range queries** (Section 6.4): "how many objects overlap this window?"
  answered approximately from a single sketch of the dataset — the classic
  approximate range aggregate.
* **Epsilon-joins** (Section 6.3): "how many point pairs from two
  observation sets are within distance eps of each other?" — the paper
  suggests using approximate join cardinalities for correlation analysis
  between datasets; here we sweep eps and compare the estimated and exact
  "correlation profiles" of two sensor point sets.

Run with::

    python examples/range_and_epsilon_queries.py
"""

from __future__ import annotations

import numpy as np

from repro import Domain, EpsilonJoinEstimator, RangeQueryEstimator, Rect
from repro.data import synthetic
from repro.exact import epsilon_join_count, range_query_count


def range_query_demo(rng: np.random.Generator) -> None:
    domain = Domain.square(8_192, dimension=2)
    buildings = synthetic.generate_rectangles(20_000, domain, mean_length=40, rng=rng)

    tuned = domain.with_max_level(6)
    estimator = RangeQueryEstimator(tuned, num_instances=512, seed=3)
    estimator.insert(buildings)

    print("range queries (estimated vs exact number of overlapping objects):")
    queries = {
        "district": Rect.from_bounds((1024, 1024), (3071, 3071)),
        "city quarter": Rect.from_bounds((0, 0), (4095, 4095)),
        "wide corridor": Rect.from_bounds((2048, 0), (4095, 8191)),
    }
    for name, window in queries.items():
        estimate = estimator.estimate(window).estimate
        exact = range_query_count(buildings, window)
        error = abs(estimate - exact) / exact if exact else float("nan")
        print(f"  {name:14s}: estimate {estimate:>9,.0f}   exact {exact:>9,}   "
              f"rel.err {error:.3f}")


def epsilon_join_demo(rng: np.random.Generator) -> None:
    domain = Domain.square(4_096, dimension=2)
    # Two sensor deployments spread over the same region.
    temperature = synthetic.generate_points(4_000, domain, rng=rng)
    humidity = synthetic.generate_points(4_000, domain, rng=rng)

    print("\nepsilon-join correlation profile (pairs within L-infinity distance eps):")
    print(f"  {'eps':>5}  {'estimate':>12}  {'exact':>12}  {'rel.err':>7}")
    for epsilon in (64, 256, 1024):
        # Restrict the dyadic levels to roughly the epsilon-cube size
        # (Section 6.5 applied to this query type) and spend more instances:
        # Lemma 8's variance bound is higher than the plain join's.
        level = int(np.ceil(np.log2(2 * epsilon)))
        tuned = domain.with_max_level(min(level, domain.dyadic(0).height))
        estimator = EpsilonJoinEstimator(tuned, epsilon, num_instances=1024, seed=7)
        estimator.insert_left(temperature)
        estimator.insert_right(humidity)
        estimate = estimator.estimate().estimate
        exact = epsilon_join_count(temperature, humidity, epsilon)
        error = abs(estimate - exact) / exact if exact else float("nan")
        print(f"  {epsilon:>5}  {estimate:>12,.0f}  {exact:>12,}  {error:>7.3f}")
    print("\nA rising profile means the two deployments are spatially correlated; the "
          "sketches deliver it without computing any exact join.")


def main() -> None:
    rng = np.random.default_rng(29)
    range_query_demo(rng)
    epsilon_join_demo(rng)


if __name__ == "__main__":
    main()
