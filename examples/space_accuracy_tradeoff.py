"""Space vs accuracy on simulated real-life map layers (Figure 9 style).

The paper's key practical claim is *predictability*: give the sketch more
memory and the estimate reliably improves, whereas histogram techniques can
get worse when their grid is refined.  This example reproduces that
comparison on the simulated LANDC / SOIL layers at a laptop-friendly scale
and prints the error-vs-space table for SKETCH, GH and EH.

Run with::

    python examples/space_accuracy_tradeoff.py
"""

from __future__ import annotations


from repro.data.reallife import load_real_life_pair
from repro.exact import rectangle_join_count
from repro.experiments.harness import histogram_errors, sketch_error_for_budgets


def main() -> None:
    left, right, domain = load_real_life_pair("LANDC", "SOIL", scale=0.1, seed=1)
    truth = rectangle_join_count(left, right)
    print(f"simulated layers: |LANDC|={len(left):,}, |SOIL|={len(right):,}, "
          f"true join size={truth:,}\n")

    budgets = (600, 1_200, 2_500, 5_000, 10_000)
    sketch_errors = sketch_error_for_budgets(left, right, domain, truth,
                                             budgets=budgets, runs=3, seed=5)

    print(f"{'space (K words)':>15}  {'SKETCH':>8}  {'EH':>8}  {'GH':>8}")
    for budget in budgets:
        baseline = histogram_errors(left, right, domain, truth, budget_words=budget)
        eh = baseline["EH"]
        gh = baseline["GH"]
        print(f"{budget / 1000:>15.1f}  {sketch_errors[budget]:>8.3f}  "
              f"{eh:>8.3f}  {gh:>8.3f}")

    print("\nSKETCH improves monotonically (on average) with space and comes with "
          "probabilistic guarantees; the EH column shows the unpredictable behaviour "
          "the paper reports when the grid is refined.")


if __name__ == "__main__":
    main()
