"""Serving sketches over the network: server, concurrent clients, hot reload.

The example stands up the asyncio TCP sketch server (:mod:`repro.server`)
in front of an :class:`~repro.service.EstimationService`, then shows the
three things the serving layer adds on top of the in-process service:

1. **Request coalescing** — four client threads fire 32 pipelined range
   estimates each; the server's micro-batching coalescer gathers the
   concurrent requests and answers them through a handful of batched
   engine calls (watch ``repro_server_coalesce_factor`` in the metrics),
   bit-identical to per-query scalar estimates.
2. **Live metrics** — the ``metrics`` verb exposes qps, latency
   quantiles, coalesce factor, queue depth and cache hit rate as
   Prometheus-style plain text.
3. **Snapshot hot-reload** — a second, larger service is checkpointed to
   a binary (v2) snapshot and swapped in through the ``reload`` verb while
   the clients' connections stay open: the same connection sees the new
   state on its next request.

Run with::

    python examples/network_service.py
"""

from __future__ import annotations

import os
import tempfile
import threading

from repro.client import ServiceClient
from repro.core.domain import Domain
from repro.server import ServerConfig, ThreadedServer
from repro.service import EstimationService, synthetic_boxes, synthetic_queries


def build_service(data_boxes: int, *, domain: Domain) -> EstimationService:
    service = EstimationService(num_shards=4, flush_threshold=None)
    service.register("ranges", family="range", domain=domain,
                     num_instances=256, seed=42)
    service.register("join", family="rectangle", domain=domain,
                     num_instances=256, seed=43)
    service.ingest("ranges", synthetic_boxes(domain, data_boxes, seed=1),
                   side="data")
    service.ingest("join", synthetic_boxes(domain, data_boxes, seed=2),
                   side="left")
    service.ingest("join", synthetic_boxes(domain, data_boxes, seed=3),
                   side="right")
    service.flush()
    return service


def main() -> None:
    domain = Domain.square(1024, dimension=2)
    service = build_service(6_000, domain=domain)

    # 1. The server: estimates coalesce into batches of up to 32 queries,
    #    waiting at most 2 ms for companions; beyond 512 queued queries the
    #    admission controller sheds load with structured errors.
    config = ServerConfig(max_batch=32, max_delay=0.002, max_queue=512)
    with ThreadedServer(service, config=config) as handle:
        print(f"server listening on 127.0.0.1:{handle.port}")

        # 2. Concurrent clients: each thread keeps ONE connection open and
        #    pipelines 32 estimates over it.  The server sees 4 x 32
        #    concurrent queries for the same estimator and answers them
        #    through ~ (128 / max_batch) batched engine calls.
        queries = synthetic_queries(domain, 32, seed=9)
        results: dict[int, list[float]] = {}

        def client_thread(worker: int) -> None:
            with ServiceClient("127.0.0.1", handle.port) as client:
                answers = client.estimate_many("ranges", queries)
                results[worker] = [a.estimate for a in answers]

        threads = [threading.Thread(target=client_thread, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        expected = [service.estimate("ranges", queries[i]).estimate
                    for i in range(32)]
        assert all(results[w] == expected for w in range(4)), \
            "coalesced estimates must be bit-identical to scalar ones"
        print("4 clients x 32 pipelined estimates: all bit-identical "
              "to direct EstimationService.estimate")

        with ServiceClient("127.0.0.1", handle.port) as client:
            # 3. Plain-text metrics straight from the server.
            print("\n--- metrics after the burst " + "-" * 32)
            text = client.metrics()
            for line in text.splitlines():
                if any(key in line for key in ("coalesce", "latency", "qps",
                                               "queue_depth", "cache")):
                    print(line)

            # 4. Hot reload: checkpoint a *grown* service to a binary v2
            #    snapshot and swap it in on the live server.  The client's
            #    TCP connection never closes.
            grown = build_service(12_000, domain=domain)
            with tempfile.TemporaryDirectory() as tmp:
                snapshot = os.path.join(tmp, "grown.sketch")
                grown.save(snapshot, format="binary")
                before = client.estimate("ranges", queries[0]).estimate
                client.reload(snapshot)
                after = client.estimate("ranges", queries[0]).estimate
            print("\n--- hot reload " + "-" * 45)
            print(f"estimate before reload : {before:,.1f} (6k boxes)")
            print(f"estimate after reload  : {after:,.1f} (12k boxes, "
                  f"same connection)")
            assert after == grown.estimate("ranges", queries[0]).estimate

    print("\nserver stopped; done")


if __name__ == "__main__":
    main()
