"""Query optimization: sketch-based selectivities drive join-order choice.

This is the scenario that motivates the paper's introduction: spatial joins
are expensive, so the optimizer needs accurate selectivity estimates to pick
a good plan.  The example builds a small GIS-style catalog (parcels, flood
zones, sensor coverage areas), attaches a synopsis manager that keeps a
join sketch per relation pair, and lets the optimizer plan a three-way
overlap join.  The chosen plan is then executed and compared against every
other join order.

Run with::

    python examples/query_optimizer.py
"""

from __future__ import annotations

import itertools

import numpy as np

from repro import Domain
from repro.data import synthetic
from repro.engine import Catalog, JoinQuery, Optimizer, SynopsisManager


def main() -> None:
    rng = np.random.default_rng(23)
    domain = Domain.square(2048, dimension=2)

    catalog = Catalog(domain)
    catalog.create("parcels",
                   boxes=synthetic.generate_rectangles(3_000, domain, rng=rng))
    catalog.create("flood_zones",
                   boxes=synthetic.generate_rectangles(800, domain, skew=0.9, rng=rng))
    catalog.create("sensor_coverage",
                   boxes=synthetic.generate_rectangles(250, domain, skew=0.4, rng=rng))

    synopses = SynopsisManager(domain.with_max_level(5), num_instances=256, seed=11)
    optimizer = Optimizer(catalog, synopses)

    # Pairwise selectivities as the optimizer sees them.
    print("estimated pairwise selectivities:")
    for left, right in itertools.combinations(catalog.names(), 2):
        selectivity = optimizer.estimated_pair_selectivity(catalog.get(left),
                                                           catalog.get(right))
        print(f"  {left:16s} x {right:16s}: {selectivity:.5f}")

    query = JoinQuery(relations=("parcels", "flood_zones", "sensor_coverage"))
    plan = optimizer.plan_join(query)
    print("\nchosen plan:")
    print(f"  join order     : {' > '.join(plan.order)}")
    for step in plan.steps:
        print(f"  step           : {step.left} join {step.right} via {step.operator} "
              f"(est. output {step.estimated_cardinality:,.0f}, "
              f"est. cost {step.estimated_cost:,.0f})")

    chosen = optimizer.execute_plan(plan)
    print(f"  actual cost    : {chosen.comparisons:,} comparisons, "
          f"{chosen.cardinality:,} result combinations")

    print("\nall join orders (actual execution cost):")
    for order in itertools.permutations(query.relations):
        candidate = optimizer._cost_order(tuple(order))
        execution = optimizer.execute_plan(candidate)
        marker = "  <== chosen" if tuple(order) == plan.order else ""
        print(f"  {' > '.join(order):55s} {execution.comparisons:>10,} comparisons{marker}")


if __name__ == "__main__":
    main()
