"""Ablation (Section 6.1): the curse of dimensionality.

Shape: at a fixed word budget, the number of affordable atomic-sketch
instances halves with every extra dimension (2^d counters each) and the
estimation error grows with the dimensionality.
"""

from repro.experiments.figures import ablation_dimensionality

from benchmarks.conftest import run_figure


def test_dimensionality_ablation(benchmark, figure_scale, record_figure, shape_checks):
    result = run_figure(benchmark, ablation_dimensionality, figure_scale, seed=0)
    record_figure(result)

    instances = result.column("instances")
    dimensions = result.column("dimension")
    # Fewer affordable instances as the dimensionality grows.
    assert all(earlier > later for earlier, later in zip(instances, instances[1:]))
    # The one-dimensional configuration is the most accurate one.
    errors = dict(zip(dimensions, result.column("mean_error")))
    assert errors[1] <= min(errors[d] for d in dimensions if d > 1) + 0.05
