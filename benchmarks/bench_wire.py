"""Wire-format benchmark: binary frames vs NDJSON on the ingest hot path.

This is the perf-regression gate of the binary wire protocol: the same
1000-box ingest payload shipped request after request to a server whose
service buffers without flushing (``flush_threshold=None``), so the
measured latency is dominated by the wire — encode, frame, socket,
decode — rather than by sketch updates.  Each payload travels

* over **NDJSON**: every box rendered to a JSON list client-side and
  parsed back into Python objects server-side before ``boxes_from_rows``
  re-packs them into an array (the pure-Python tax), and
* over the **binary frame format**: the box tensor shipped as raw
  little-endian int64 bytes that decode zero-copy server-side,

and the binary p99 latency must be **at least 2x** better.  The exact
same traffic is then flushed on both servers and a shared query set must
estimate bit-identically, so the speedup cannot come from answering a
different question.

Besides the human-readable record under ``benchmarks/results/``, the run
writes ``BENCH_wire.json`` at the repository root; CI consumes that file
and fails the perf-smoke job when the speedup drops below 2x.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.client import ServiceClient
from repro.core.domain import Domain
from repro.server import ServerConfig, ThreadedServer
from repro.service import EstimationService, synthetic_boxes, synthetic_queries

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_wire.json"

DOMAIN = Domain.square(65536, dimension=2)
NUM_INSTANCES = 64
BOXES_PER_PAYLOAD = 1000
REQUESTS = 120
WARMUP = 8
QUERIES = 64
MIN_SPEEDUP = 2.0


def _make_server() -> ThreadedServer:
    # No flushing during the timed loop: every ingest request only buffers
    # its rows, so the latency distribution measures the wire, not the
    # sketch kernels (those have their own gate in bench_program_cache).
    service = EstimationService(flush_threshold=None)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=21)
    return ThreadedServer(service, config=ServerConfig(port=0)).start()


def _timed_ingests(client: ServiceClient, payloads) -> np.ndarray:
    for payload in payloads[:WARMUP]:
        client.ingest("ranges", payload, side="data")
    timed = payloads[WARMUP:]
    seconds = np.empty(len(timed), dtype=np.float64)
    for index, payload in enumerate(timed):
        start = time.perf_counter()
        client.ingest("ranges", payload, side="data")
        seconds[index] = time.perf_counter() - start
    return seconds


def _percentiles(seconds: np.ndarray) -> tuple[float, float]:
    return (float(np.percentile(seconds, 50) * 1e3),
            float(np.percentile(seconds, 99) * 1e3))


def test_binary_wire_at_least_2x_ndjson_on_ingest(benchmark):
    """The acceptance gate: binary ingest p99 >= 2x better than NDJSON."""
    rng = np.random.default_rng(9)
    payloads = []
    for _ in range(WARMUP + REQUESTS):
        boxes = synthetic_boxes(DOMAIN, BOXES_PER_PAYLOAD,
                                seed=int(rng.integers(1 << 31)))
        payloads.append([row for row in np.hstack([boxes.lows,
                                                   boxes.highs]).tolist()])

    ndjson_server = _make_server()
    binary_server = _make_server()
    try:
        ndjson_client = ServiceClient("127.0.0.1", ndjson_server.port,
                                      wire="ndjson")
        binary_client = ServiceClient("127.0.0.1", binary_server.port,
                                      wire="binary")
        assert binary_client.wire_format == "binary"

        ndjson_seconds = _timed_ingests(ndjson_client, payloads)
        binary_seconds = benchmark.pedantic(
            lambda: _timed_ingests(binary_client, payloads),
            rounds=1, iterations=1)

        # Bit-identity on the very traffic that was timed: flush both
        # servers and compare estimates for a shared query set.
        ndjson_client.flush()
        binary_client.flush()
        queries = synthetic_queries(DOMAIN, QUERIES, seed=31)
        via_ndjson = ndjson_client.estimate_many("ranges", queries)
        via_binary = binary_client.estimate_many("ranges", queries)
        assert ([r.estimate for r in via_ndjson]
                == [r.estimate for r in via_binary])

        ndjson_client.close()
        binary_client.close()
    finally:
        ndjson_server.stop()
        binary_server.stop()

    ndjson_p50, ndjson_p99 = _percentiles(ndjson_seconds)
    binary_p50, binary_p99 = _percentiles(binary_seconds)
    p50_speedup = ndjson_p50 / binary_p50
    p99_speedup = ndjson_p99 / binary_p99

    report = {
        "domain": list(DOMAIN.requested_sizes),
        "num_instances": NUM_INSTANCES,
        "ingest_1k": {
            "boxes_per_payload": BOXES_PER_PAYLOAD,
            "requests": REQUESTS,
            "ndjson_p50_ms": ndjson_p50,
            "ndjson_p99_ms": ndjson_p99,
            "binary_p50_ms": binary_p50,
            "binary_p99_ms": binary_p99,
            "p50_speedup": p50_speedup,
            "p99_speedup": p99_speedup,
            "min_speedup": MIN_SPEEDUP,
        },
        "estimates_bit_identical": True,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"wire formats: {REQUESTS} ingest requests x {BOXES_PER_PAYLOAD} "
        f"boxes over one connection each",
        f"ndjson : p50 {ndjson_p50:8.3f} ms   p99 {ndjson_p99:8.3f} ms",
        f"binary : p50 {binary_p50:8.3f} ms   p99 {binary_p99:8.3f} ms",
        f"speedup: p50 {p50_speedup:6.1f}x    p99 {p99_speedup:6.1f}x "
        f"(gate: >= {MIN_SPEEDUP}x on p99)",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / "bench_wire.txt").write_text(text + "\n", encoding="utf-8")
    assert p99_speedup >= MIN_SPEEDUP
