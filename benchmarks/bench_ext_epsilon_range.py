"""Extensions (Sections 6.3 / 6.4): epsilon-join and range-query estimators.

Shape: both estimators are unbiased; at the configured instance counts
their estimates land in the right ballpark of the exact answers.
"""

import math

from repro.experiments.figures import extension_epsilon_range

from benchmarks.conftest import run_figure


def test_epsilon_and_range_extensions(benchmark, figure_scale, record_figure, shape_checks):
    result = run_figure(benchmark, extension_epsilon_range, figure_scale, seed=0)
    record_figure(result)

    assert len(result.rows) == 2
    for query, truth, estimate, error in result.rows:
        assert math.isfinite(estimate)
        if shape_checks and truth > 0:
            # Right ballpark: within a factor of ~2 of the exact answer.
            assert error < 1.0, f"{query}: error {error}"
