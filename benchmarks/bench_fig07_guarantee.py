"""Figure 7: actual relative error vs the guaranteed error bound (1-d joins).

Paper shape: for a sketch sized by Theorem 1 (epsilon = 0.3, phi = 0.01)
the measured relative error stays far below the guaranteed bound at every
dataset size.
"""

from repro.experiments.figures import figure7

from benchmarks.conftest import run_figure


def test_figure7_error_stays_below_guarantee(benchmark, figure_scale, record_figure, shape_checks):
    result = run_figure(benchmark, figure7, figure_scale, seed=0)
    record_figure(result)

    for size, true_error, bound in result.rows:
        assert true_error < bound, f"size {size}: measured {true_error} >= bound {bound}"
    # The paper observes the measured error to be *well* below the bound.
    average = sum(result.column("true_error")) / len(result.rows)
    assert average < 0.75 * result.rows[0][2]
