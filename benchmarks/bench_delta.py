"""Delta-propagation benchmark: incremental view refresh vs rebuild-on-flush.

This is the perf-regression gate of the delta-propagation fast path: a hot
mixed ingest+estimate workload — small update batches flushed round after
round, each flush followed by the same large mixed query batch (the shape
a serving layer sees from a live feed plus dashboard polling) — answered
through

* the **rebuild path**: a service with ``delta_propagation=False``, so
  every flush invalidates the merged-view cache and the next estimate
  batch pays a full view rebuild — fresh xi bank objects, which orphan
  every letter-sum cache entry and lazily-built sign table, so the whole
  query batch recomputes its letter sums from scratch (the pre-delta
  steady-state serving cost), and
* the **delta path**: a service with ``delta_propagation=True`` (the
  default), where each refresh is one fused counter add per bank onto the
  previous cached view with the xi families *aliased* — so the executor's
  letter-sum cache and the sign tables stay warm across flushes and the
  post-flush query batch runs at cached speed,

and the delta path must be **at least 3x** faster over the steady-state
rounds.  Estimates are asserted bit-identical between the two paths every
round — counter updates are exact integers in float64, so the fused
``base + delta`` add reproduces the full re-merge exactly.

Besides the human-readable record under ``benchmarks/results/``, the run
writes ``BENCH_delta.json`` at the repository root; CI consumes that file
and fails the perf-smoke job when the speedup drops below 3x.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core.domain import Domain
from repro.service import EstimationService, synthetic_boxes, synthetic_queries

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_delta.json"

DOMAIN = Domain.square(65536, dimension=2)
NUM_INSTANCES = 192
SEED_BOXES = 4000          # initial bulk load per side
DELTA_BOXES = 16           # boxes per ingest batch in the hot loop
WARMUP_ROUNDS = 1          # first refresh is a rebuild on both paths
ROUNDS = 8                 # timed steady-state flush+estimate rounds
RANGE_QUERIES = 1024       # range queries per post-flush batch
QUERYLESS_REQUESTS = 32    # join estimates per post-flush batch
MIN_SPEEDUP = 3.0

NAMES = ("ranges", "join")


def _make_service(*, delta_propagation: bool) -> EstimationService:
    service = EstimationService(num_shards=4, flush_threshold=None,
                                delta_propagation=delta_propagation)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=11)
    service.register("join", family="rectangle", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=12)
    boxes = synthetic_boxes(DOMAIN, SEED_BOXES, seed=1)
    service.ingest("ranges", boxes, side="data")
    service.ingest("join", boxes, side="left")
    service.ingest("join", synthetic_boxes(DOMAIN, SEED_BOXES, seed=2),
                   side="right")
    service.flush()
    return service


def _mixed_requests() -> list:
    queries = synthetic_queries(DOMAIN, RANGE_QUERIES, seed=7)
    requests = [("ranges", queries[index:index + 1])
                for index in range(len(queries))]
    requests.extend(("join", None) for _ in range(QUERYLESS_REQUESTS))
    return requests


def _one_round(service: EstimationService, round_index: int, requests) -> list:
    """One hot-loop round: flush small batches, answer the mixed query set."""
    service.ingest("ranges",
                   synthetic_boxes(DOMAIN, DELTA_BOXES, seed=100 + round_index),
                   side="data")
    service.ingest("join",
                   synthetic_boxes(DOMAIN, DELTA_BOXES, seed=200 + round_index),
                   side="left")
    service.flush()
    results = service.estimate_multi(requests)
    return [(r.estimate, r.instance_values.tobytes()) for r in results]


def test_delta_refresh_at_least_3x_rebuild(benchmark):
    """The acceptance gate: delta-applied refresh >= 3x rebuild-on-flush."""
    requests = _mixed_requests()
    with_delta = _make_service(delta_propagation=True)
    without_delta = _make_service(delta_propagation=False)

    # Warm-up: the first refresh after a cold start is a full rebuild on
    # both paths (and JITs/populates every lazy structure); steady state
    # starts with the second flush.
    for round_index in range(WARMUP_ROUNDS):
        warm_delta = _one_round(with_delta, round_index, requests)
        warm_rebuild = _one_round(without_delta, round_index, requests)
        assert warm_delta == warm_rebuild

    def run_rebuild() -> tuple[float, list]:
        outputs = []
        start = time.perf_counter()
        for round_index in range(WARMUP_ROUNDS, WARMUP_ROUNDS + ROUNDS):
            outputs.append(_one_round(without_delta, round_index, requests))
        return time.perf_counter() - start, outputs

    def run_delta() -> tuple[float, list]:
        outputs = []
        start = time.perf_counter()
        for round_index in range(WARMUP_ROUNDS, WARMUP_ROUNDS + ROUNDS):
            outputs.append(_one_round(with_delta, round_index, requests))
        return time.perf_counter() - start, outputs

    rebuild_seconds, rebuild_outputs = run_rebuild()
    delta_seconds, delta_outputs = benchmark.pedantic(run_delta, rounds=1,
                                                      iterations=1)

    identical = delta_outputs == rebuild_outputs
    assert identical  # bit-for-bit, including the instance-value vectors

    speedup = rebuild_seconds / delta_seconds
    on_stats = with_delta.stats
    off_stats = without_delta.stats
    total_rounds = WARMUP_ROUNDS + ROUNDS
    total_requests = ROUNDS * len(requests)

    report = {
        "domain": list(DOMAIN.requested_sizes),
        "num_instances": NUM_INSTANCES,
        "hot_workload": {
            "names": len(NAMES),
            "rounds": ROUNDS,
            "delta_boxes_per_round": len(NAMES) * DELTA_BOXES,
            "requests_per_round": len(requests),
            "total_requests": total_requests,
            "rebuild_seconds": rebuild_seconds,
            "delta_seconds": delta_seconds,
            "rebuild_qps": total_requests / rebuild_seconds,
            "delta_qps": total_requests / delta_seconds,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "identical": int(identical),
        },
        "delta_path": {
            "delta_applies": on_stats.delta_applies,
            "rebuilds": on_stats.rebuilds,
            "cache_misses": on_stats.cache_misses,
        },
        "rebuild_path": {
            "delta_applies": off_stats.delta_applies,
            "rebuilds": off_stats.rebuilds,
            "cache_misses": off_stats.cache_misses,
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")

    # Steady state must be all delta-applies on the fast path (one rebuild
    # per name at cold start), all rebuilds on the baseline.
    assert on_stats.delta_applies == len(NAMES) * (total_rounds - 1)
    assert on_stats.rebuilds == len(NAMES)
    assert off_stats.delta_applies == 0
    assert off_stats.rebuilds == len(NAMES) * total_rounds

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"delta propagation: {ROUNDS} rounds x ({len(NAMES) * DELTA_BOXES} "
        f"flushed boxes + {len(requests)} mixed estimates) over "
        f"{len(NAMES)} estimators ({NUM_INSTANCES} instances)",
        f"rebuild-on-flush: {rebuild_seconds:8.3f} s "
        f"({total_requests / rebuild_seconds:10.0f} q/s, "
        f"{off_stats.rebuilds} full re-merges)",
        f"delta refresh   : {delta_seconds:8.3f} s "
        f"({total_requests / delta_seconds:10.0f} q/s, "
        f"{on_stats.delta_applies} delta applies)",
        f"speedup         : {speedup:8.1f}x (gate: >= {MIN_SPEEDUP}x)",
        "estimates       : bit-identical across both paths",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / "bench_delta.txt").write_text(text + "\n",
                                                 encoding="utf-8")
    assert speedup >= MIN_SPEEDUP
