"""Snapshot-format benchmark: binary v2 vs JSON v1 (size and latency).

This is the perf-regression gate of the columnar state layer:

* restoring a service from a **binary v2** snapshot (memory-mapped counter
  tensors) must beat restoring the same state from **v1 JSON** by **at
  least 3x**, and
* the v2 file must be **at least 2x smaller** than the v1 JSON file
  (shared xi tensors are deduplicated; counters are raw float64 instead of
  decimal text).

Besides the human-readable record under ``benchmarks/results/``, the run
writes ``BENCH_snapshot.json`` at the repository root; CI consumes that
file and fails the perf-smoke job when either ratio drops below its gate.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core.domain import Domain
from repro.service import EstimationService, load_snapshot, synthetic_boxes

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_snapshot.json"

DOMAIN = Domain.square(1024, dimension=2)
NUM_INSTANCES = 512
DATA_BOXES = 4000
RESTORE_ROUNDS = 5
MIN_RESTORE_SPEEDUP = 3.0
MIN_SIZE_REDUCTION = 2.0


def _make_service() -> EstimationService:
    service = EstimationService(num_shards=4, flush_threshold=None)
    service.register("join", family="rectangle", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=11)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=12)
    service.register("containment", family="containment", domain=DOMAIN,
                     num_instances=NUM_INSTANCES // 2, seed=13)
    service.ingest("join", synthetic_boxes(DOMAIN, DATA_BOXES, seed=1),
                   side="left")
    service.ingest("join", synthetic_boxes(DOMAIN, DATA_BOXES, seed=2),
                   side="right")
    service.ingest("ranges", synthetic_boxes(DOMAIN, DATA_BOXES, seed=3),
                   side="data")
    service.ingest("containment", synthetic_boxes(DOMAIN, DATA_BOXES, seed=4),
                   side="outer")
    service.ingest("containment", synthetic_boxes(DOMAIN, DATA_BOXES, seed=5),
                   side="inner")
    service.flush()
    return service


def _timed_restore(path: str, rounds: int) -> tuple[float, EstimationService]:
    best = float("inf")
    restored = None
    for _ in range(rounds):
        start = time.perf_counter()
        restored = load_snapshot(path)
        best = min(best, time.perf_counter() - start)
    return best, restored


def _record(name: str, lines: list[str]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def test_binary_snapshot_beats_json_3x_restore_2x_size(benchmark, tmp_path):
    """The acceptance gates: v2 restore >= 3x faster, file >= 2x smaller."""
    service = _make_service()
    expected_join = service.estimate("join").estimate

    json_path = str(tmp_path / "svc.json")
    binary_path = str(tmp_path / "svc.snap")

    start = time.perf_counter()
    service.save(json_path, format="json")
    json_save_seconds = time.perf_counter() - start

    def run_binary_save() -> float:
        start = time.perf_counter()
        service.save(binary_path, format="binary")
        return time.perf_counter() - start

    binary_save_seconds = benchmark.pedantic(run_binary_save, rounds=1,
                                             iterations=1)

    json_bytes = os.path.getsize(json_path)
    binary_bytes = os.path.getsize(binary_path)
    size_reduction = json_bytes / binary_bytes

    json_restore_seconds, from_json = _timed_restore(json_path, RESTORE_ROUNDS)
    binary_restore_seconds, from_binary = _timed_restore(binary_path,
                                                         RESTORE_ROUNDS)
    restore_speedup = json_restore_seconds / binary_restore_seconds

    # Both restores must answer bit-identically before any ratio counts.
    assert from_json.estimate("join").estimate == expected_join
    assert from_binary.estimate("join").estimate == expected_join

    report = {
        "domain": list(DOMAIN.requested_sizes),
        "num_instances": NUM_INSTANCES,
        "data_boxes": DATA_BOXES,
        "estimators": service.names(),
        "snapshot_bytes": {
            "v1_json": json_bytes,
            "v2_binary": binary_bytes,
            "size_reduction": size_reduction,
            "min_size_reduction": MIN_SIZE_REDUCTION,
        },
        "save_seconds": {
            "v1_json": json_save_seconds,
            "v2_binary": binary_save_seconds,
        },
        "restore_seconds": {
            "v1_json": json_restore_seconds,
            "v2_binary": binary_restore_seconds,
            "restore_speedup": restore_speedup,
            "min_restore_speedup": MIN_RESTORE_SPEEDUP,
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")

    _record("snapshot_formats", [
        f"service snapshot formats ({len(service.names())} estimators, "
        f"{NUM_INSTANCES} instances, 4 shards)",
        f"size    : v1 JSON {json_bytes:9,d} B   v2 binary {binary_bytes:9,d} B"
        f"   ({size_reduction:4.1f}x smaller, gate >= {MIN_SIZE_REDUCTION}x)",
        f"save    : v1 JSON {json_save_seconds * 1e3:8.1f} ms  "
        f"v2 binary {binary_save_seconds * 1e3:8.1f} ms",
        f"restore : v1 JSON {json_restore_seconds * 1e3:8.1f} ms  "
        f"v2 binary {binary_restore_seconds * 1e3:8.1f} ms"
        f"   ({restore_speedup:4.1f}x faster, gate >= {MIN_RESTORE_SPEEDUP}x)",
    ])

    assert size_reduction >= MIN_SIZE_REDUCTION
    assert restore_speedup >= MIN_RESTORE_SPEEDUP
