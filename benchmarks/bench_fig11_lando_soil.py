"""Figure 11: relative error vs allocated space, LANDO join SOIL (simulated).

Paper shape: as for Figures 9 and 10.
"""

import math

from repro.experiments.figures import figure11

from benchmarks.conftest import run_figure


def test_figure11_lando_soil(benchmark, figure_scale, record_figure, shape_checks):
    result = run_figure(benchmark, figure11, figure_scale, seed=0)
    record_figure(result)

    sketch = result.column("sketch_error")
    assert all(math.isfinite(value) and value >= 0 for value in sketch)
    if shape_checks:
        assert sketch[-1] <= sketch[0] + 0.05
