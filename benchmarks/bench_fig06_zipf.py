"""Figure 6: relative error vs dataset size, skewed data (Zipf z = 1).

Paper shape: the three techniques move much closer together than for
uniform data, with SKETCH marginally best; errors stay roughly flat in the
dataset size.
"""

import math

from repro.experiments.figures import figure6

from benchmarks.conftest import run_figure


def test_figure6_skewed_join_error(benchmark, figure_scale, record_figure, shape_checks):
    result = run_figure(benchmark, figure6, figure_scale, seed=0)
    record_figure(result)

    sketch = result.column("sketch_error")
    eh = result.column("eh_error")
    gh = result.column("gh_error")

    assert all(math.isfinite(value) for value in sketch)
    assert all(value >= 0 for value in sketch + gh)
    if shape_checks:
        # Shape: no blow-up with dataset size.
        assert max(sketch) <= 5 * max(min(sketch), 1e-3) + 0.5
        # Shape: under skew the gap between SKETCH and the histogram techniques
        # narrows — SKETCH must stay at least comparable to EH.
        def mean(xs):
            return sum(xs) / len(xs)
        assert mean(sketch) <= mean(eh) + 0.3
