"""Noisy-neighbor benchmark: fair-share serving keeps a tenant's p99 flat.

The perf-regression gate of the multi-tenant serving layer: a
well-behaved tenant (``steady``) drives a fixed pipelined estimate
workload twice against a token-authenticated server —

* **solo** — the steady tenant has the server to itself, and
* **contended** — a second tenant (``noisy``) simultaneously floods the
  server with 4x the request volume,

and the steady tenant's own p99 (scraped from its ``{tenant="steady"}``
latency series, the numbers an operator would alert on) must stay within
**1.5x** of its solo baseline.  Two tenancy mechanisms carry the gate:
the noisy tenant runs with an estimates-in-flight cap, so the flood is
clipped to structured ``quota_exceeded`` rejections instead of queue
growth, and the coalescer drains per-tenant queues weighted-round-robin
(steady's quota carries a larger ``share``), so whatever noisy load is
admitted cannot monopolise batch composition.

Both scenarios run on identical resources (one engine-executor thread);
the benchmark reports ``p99_guard = 1.5 * solo_p99 / contended_p99`` so
the declarative gate in ``gates.json`` is a simple ``min: 1.0`` floor.
Besides the record under ``benchmarks/results/``, the run writes
``BENCH_tenancy.json`` at the repository root for CI.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import time

from repro.core.domain import Domain
from repro.server import ServerConfig, ThreadedServer, protocol
from repro.service import EstimationService, synthetic_boxes, synthetic_queries
from repro.tenancy import TenantQuota

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_tenancy.json"

DOMAIN = Domain.square(1024, dimension=2)
NUM_INSTANCES = 256
DATA_BOXES = 4000

STEADY_TOKEN = "steady-token"
NOISY_TOKEN = "noisy-token"
STEADY_CONNECTIONS = 4
STEADY_QUERIES = 128           # 512 steady requests per scenario
NOISY_CONNECTIONS = 8
NOISY_QUERIES = 64             # 512 noisy requests in the contended run
P99_GUARD = 1.5

CONFIG = ServerConfig(max_batch=64, max_delay=0.005, max_queue=8192,
                      executor_workers=1, admin_token="bench-admin")

STEADY_QUOTA = TenantQuota(share=4)
NOISY_QUOTA = TenantQuota(share=1, max_estimates_in_flight=8)


def _make_service() -> EstimationService:
    service = EstimationService(num_shards=4, flush_threshold=None)
    service.tenant_create("steady", token=STEADY_TOKEN, quota=STEADY_QUOTA)
    service.tenant_create("noisy", token=NOISY_TOKEN, quota=NOISY_QUOTA)
    for tenant, seed in (("steady", 1), ("noisy", 2)):
        facade = service.tenant_facade(tenant)
        facade.register("ranges", family="range", domain=DOMAIN,
                        num_instances=NUM_INSTANCES, seed=11)
        facade.ingest("ranges", synthetic_boxes(DOMAIN, DATA_BOXES, seed=seed),
                      side="data")
    service.flush()
    # Warm both merged views so neither scenario pays the first build.
    query = synthetic_queries(DOMAIN, 1, seed=99)
    service.estimate("steady/ranges", query)
    service.estimate("noisy/ranges", query)
    return service


def _metric(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"metric {name} missing from exposition")


def _request_lines(token: str, num_queries: int, seed: int) -> bytes:
    queries = synthetic_queries(DOMAIN, num_queries, seed=seed)
    lines = [protocol.encode({"op": "auth", "token": token})]
    lines += [protocol.encode({"op": "estimate", "name": "ranges",
                               "query": row})
              for row in protocol.boxes_to_rows(queries)]
    return b"".join(lines)


async def _one_connection(port: int, payload: bytes, replies: int,
                          counts: dict) -> None:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    auth_reply = json.loads(await reader.readline())
    assert auth_reply["ok"], auth_reply
    for _ in range(replies):
        reply = json.loads(await reader.readline())
        if reply["ok"]:
            counts["ok"] += 1
        else:
            assert reply["error_code"] == "quota_exceeded", reply
            counts["rejected"] += 1
    writer.close()
    await writer.wait_closed()


async def _scrape_metrics(port: int) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(protocol.encode({"op": "metrics"}))
    await writer.drain()
    reply = json.loads(await reader.readline())
    writer.close()
    return reply["text"]


async def _drive(port: int, *, with_noise: bool) -> tuple[dict, dict, str]:
    steady = {"ok": 0, "rejected": 0}
    noisy = {"ok": 0, "rejected": 0}
    steady_payload = _request_lines(STEADY_TOKEN, STEADY_QUERIES, seed=7)
    tasks = [_one_connection(port, steady_payload, STEADY_QUERIES, steady)
             for _ in range(STEADY_CONNECTIONS)]
    if with_noise:
        noisy_payload = _request_lines(NOISY_TOKEN, NOISY_QUERIES, seed=13)
        tasks += [_one_connection(port, noisy_payload, NOISY_QUERIES, noisy)
                  for _ in range(NOISY_CONNECTIONS)]
    await asyncio.gather(*tasks)
    return steady, noisy, await _scrape_metrics(port)


def _scenario(*, with_noise: bool) -> dict:
    """One scenario on a fresh service/server pair (clean latency windows)."""
    service = _make_service()
    with ThreadedServer(service, config=CONFIG) as handle:
        start = time.perf_counter()
        steady, noisy, text = asyncio.run(_drive(handle.port,
                                                 with_noise=with_noise))
        elapsed = time.perf_counter() - start
    assert steady["ok"] == STEADY_CONNECTIONS * STEADY_QUERIES
    assert steady["rejected"] == 0
    prefix = 'repro_server_tenant_estimate_latency_ms{tenant="steady"'
    return {
        "steady_requests": steady["ok"],
        "noisy_ok": noisy["ok"],
        "noisy_rejected": noisy["rejected"],
        "seconds": elapsed,
        "steady_p50_ms": _metric(text, prefix + ',quantile="0.5"}'),
        "steady_p99_ms": _metric(text, prefix + ',quantile="0.99"}'),
    }


def _record(name: str, lines: list[str]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def test_noisy_neighbor_keeps_steady_p99(benchmark):
    """The acceptance gate: contended steady p99 <= 1.5x its solo baseline."""
    solo = _scenario(with_noise=False)
    contended = benchmark.pedantic(lambda: _scenario(with_noise=True),
                                   rounds=1, iterations=1)

    ratio = (contended["steady_p99_ms"] / solo["steady_p99_ms"]
             if solo["steady_p99_ms"] else 0.0)
    guard = P99_GUARD / ratio if ratio else P99_GUARD
    report = {
        "noisy_neighbor": {
            "steady_requests": solo["steady_requests"],
            "noisy_requests": NOISY_CONNECTIONS * NOISY_QUERIES,
            "steady_share": STEADY_QUOTA.share,
            "noisy_in_flight_cap": NOISY_QUOTA.max_estimates_in_flight,
            "solo": solo,
            "contended": contended,
            "p99_ratio": ratio,
            "p99_guard": guard,
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")

    def row(name: str, scenario: dict) -> str:
        return (f"{name:10s} steady p50 {scenario['steady_p50_ms']:7.2f} ms   "
                f"p99 {scenario['steady_p99_ms']:7.2f} ms   "
                f"noisy ok/rejected {scenario['noisy_ok']:4d}/"
                f"{scenario['noisy_rejected']:4d}")

    _record("bench_tenancy", [
        f"noisy neighbor: {solo['steady_requests']} steady estimates vs "
        f"{NOISY_CONNECTIONS * NOISY_QUERIES} noisy requests",
        row("solo", solo),
        row("contended", contended),
        f"steady p99 ratio: {ratio:.2f}x (gate: <= {P99_GUARD}x)",
        f"report: {REPORT_PATH.name}",
    ])

    assert contended["noisy_ok"] > 0  # the flood was served, not refused
    assert ratio <= P99_GUARD, (
        f"noisy neighbor degraded the steady tenant's p99 by {ratio:.2f}x "
        f"(gate: <= {P99_GUARD}x)")
