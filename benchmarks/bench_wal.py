"""Durability-cost benchmark: WAL write overhead and recovery speed.

The two perf gates of the durability layer:

* **ingest overhead** — with a buffered WAL attached (``sync="none"``)
  ingest throughput must stay at **>= 0.7x** the WAL-less service (the
  log append is one userspace write of an already-contiguous tensor), and
* **recovery speed** — recovering ``checkpoint + tail replay`` must beat
  re-ingesting the raw update stream from scratch by **at least 5x**
  (that is what checkpointing buys: recovery cost proportional to the
  tail, not the history).

Besides the human-readable record under ``benchmarks/results/``, the run
writes ``BENCH_wal.json`` at the repository root; CI consumes that file
through ``benchmarks/check_gates.py`` (the ``wal`` gate).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core.domain import Domain
from repro.service import EstimationService, synthetic_boxes
from repro.wal import WalWriter, recover_service

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_wal.json"

DOMAIN = Domain.square(1024, dimension=2)
NUM_INSTANCES = 256
NUM_BATCHES = 80
BATCH_BOXES = 500
#: Batches covered by the checkpoint; only the rest replay on recovery.
CHECKPOINT_AFTER = 76
RECOVERY_ROUNDS = 3
MIN_THROUGHPUT_RATIO = 0.7
MIN_RECOVERY_SPEEDUP = 5.0


def _query():
    return synthetic_boxes(DOMAIN, 1, seed=999)


def _batches() -> list:
    return [synthetic_boxes(DOMAIN, BATCH_BOXES, seed=100 + index)
            for index in range(NUM_BATCHES)]


def _fresh_service() -> EstimationService:
    service = EstimationService(num_shards=4, flush_threshold=None)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=11)
    return service


def _timed_ingest(service: EstimationService, batches: list) -> float:
    start = time.perf_counter()
    for boxes in batches:
        service.ingest("ranges", boxes, side="data")
    service.flush()
    return time.perf_counter() - start


def _record(name: str, lines: list[str]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def test_wal_overhead_and_recovery_speed(benchmark, tmp_path):
    """The acceptance gates: >= 0.7x ingest ratio, >= 5x recovery speedup."""
    batches = _batches()
    total_boxes = NUM_BATCHES * BATCH_BOXES

    # -- ingest overhead: WAL-off vs buffered WAL-on --------------------------
    plain = _fresh_service()
    wal_off_seconds = _timed_ingest(plain, batches)
    expected = plain.estimate("ranges", _query()).estimate

    wal_dir = tmp_path / "wal"
    durable = _fresh_service()
    durable.attach_wal(WalWriter(wal_dir, sync="none"))

    def run_wal_on() -> float:
        return _timed_ingest(durable, batches)

    wal_on_seconds = benchmark.pedantic(run_wal_on, rounds=1, iterations=1)
    throughput_ratio = wal_off_seconds / wal_on_seconds
    # Both services saw the identical stream: estimates must agree exactly.
    assert durable.estimate("ranges", _query()).estimate == expected
    durable.detach_wal()

    # -- recovery: checkpoint + tail replay vs raw re-ingest ------------------
    ckpt = tmp_path / "ckpt.sketch"
    recovery_dir = tmp_path / "recovery-wal"
    victim = _fresh_service()
    victim.attach_wal(WalWriter(recovery_dir, sync="none"),
                      checkpoint_path=ckpt)
    for boxes in batches[:CHECKPOINT_AFTER]:
        victim.ingest("ranges", boxes, side="data")
    victim.checkpoint()
    for boxes in batches[CHECKPOINT_AFTER:]:
        victim.ingest("ranges", boxes, side="data")
    victim.flush()
    expected_recovered = victim.estimate("ranges", _query()).estimate
    victim.detach_wal()

    recovery_seconds = float("inf")
    recovered = None
    for _ in range(RECOVERY_ROUNDS):
        start = time.perf_counter()
        recovered, report = recover_service(recovery_dir, ckpt, attach=False)
        recovery_seconds = min(recovery_seconds,
                               time.perf_counter() - start)
    assert report.replayed_records == NUM_BATCHES - CHECKPOINT_AFTER
    assert recovered.estimate("ranges", _query()).estimate == expected_recovered

    reingest_seconds = _timed_ingest(_fresh_service(), batches)
    recovery_speedup = reingest_seconds / recovery_seconds

    report_doc = {
        "domain": list(DOMAIN.requested_sizes),
        "num_instances": NUM_INSTANCES,
        "wal_ingest": {
            "boxes": total_boxes,
            "batches": NUM_BATCHES,
            "wal_off_seconds": wal_off_seconds,
            "wal_on_seconds": wal_on_seconds,
            "throughput_ratio": throughput_ratio,
            "min_throughput_ratio": MIN_THROUGHPUT_RATIO,
        },
        "recovery": {
            "tail_records": NUM_BATCHES - CHECKPOINT_AFTER,
            "tail_boxes": (NUM_BATCHES - CHECKPOINT_AFTER) * BATCH_BOXES,
            "recovery_seconds": recovery_seconds,
            "reingest_seconds": reingest_seconds,
            "speedup": recovery_speedup,
            "min_speedup": MIN_RECOVERY_SPEEDUP,
        },
    }
    REPORT_PATH.write_text(json.dumps(report_doc, indent=2) + "\n",
                           encoding="utf-8")

    _record("wal_durability", [
        f"WAL durability costs ({total_boxes:,d} boxes, "
        f"{NUM_INSTANCES} instances, 4 shards)",
        f"ingest  : WAL off {wal_off_seconds * 1e3:8.1f} ms   "
        f"WAL on {wal_on_seconds * 1e3:8.1f} ms   "
        f"({throughput_ratio:4.2f}x, gate >= {MIN_THROUGHPUT_RATIO}x)",
        f"recover : replay {recovery_seconds * 1e3:8.1f} ms   "
        f"re-ingest {reingest_seconds * 1e3:8.1f} ms   "
        f"({recovery_speedup:4.1f}x faster, gate >= {MIN_RECOVERY_SPEEDUP}x)",
    ])

    assert throughput_ratio >= MIN_THROUGHPUT_RATIO
    assert recovery_speedup >= MIN_RECOVERY_SPEEDUP
