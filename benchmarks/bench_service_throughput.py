"""Service benchmark: ingestion throughput and estimate latency vs. shards.

Shape assertions:

* batched ingestion through the service (buffer + vectorised flush) is at
  least 5x faster, in boxes/sec, than feeding the same service one box at
  a time with a flush per box (the acceptance criterion of the service
  subsystem),
* the merged-view LRU cache makes repeated estimates much cheaper than the
  first (cold) one.

Following the conventions of this suite, the measured series are printed
and recorded under ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib
import time

from repro.core.domain import Domain
from repro.service import EstimationService, synthetic_boxes

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

DOMAIN = Domain.square(1024, dimension=2)
NUM_INSTANCES = 64
BATCHED_BOXES = 4000
PER_BOX_BOXES = 250


def _make_service(num_shards: int, flush_threshold=None) -> EstimationService:
    service = EstimationService(num_shards=num_shards,
                                flush_threshold=flush_threshold)
    service.register("join", family="rectangle", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=7)
    return service


def _ingest_rate(service: EstimationService, boxes, *, per_box: bool) -> float:
    """Boxes per second for one full ingest+flush cycle."""
    start = time.perf_counter()
    if per_box:
        for index in range(len(boxes)):
            service.ingest("join", boxes[index], side="left")
            service.flush()
    else:
        service.ingest("join", boxes, side="left")
        service.flush()
    elapsed = time.perf_counter() - start
    return len(boxes) / elapsed


def _record(name: str, lines: list[str]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def test_batched_ingestion_at_least_5x_per_box(benchmark):
    """The acceptance criterion: batching beats per-box inserts >= 5x."""
    batched_data = synthetic_boxes(DOMAIN, BATCHED_BOXES, seed=1)
    per_box_data = synthetic_boxes(DOMAIN, PER_BOX_BOXES, seed=2)

    service = _make_service(num_shards=4)
    batched_rate = benchmark.pedantic(
        lambda: _ingest_rate(service, batched_data, per_box=False),
        rounds=1, iterations=1)

    per_box_rate = _ingest_rate(_make_service(num_shards=4), per_box_data,
                                per_box=True)

    _record("service_ingest_batched_vs_perbox", [
        "service ingestion throughput (rectangle family, "
        f"{NUM_INSTANCES} instances, 4 shards)",
        f"batched ({BATCHED_BOXES} boxes)   : {batched_rate:12.0f} boxes/s",
        f"per-box ({PER_BOX_BOXES} boxes)    : {per_box_rate:12.0f} boxes/s",
        f"speedup                  : {batched_rate / per_box_rate:12.1f}x",
    ])
    assert batched_rate >= 5.0 * per_box_rate


def test_throughput_vs_shard_count(benchmark):
    """Throughput stays in the same ballpark as shards scale (no collapse)."""
    data = synthetic_boxes(DOMAIN, BATCHED_BOXES, seed=3)
    rates: dict[int, float] = {}

    def sweep() -> dict[int, float]:
        for shards in (1, 2, 4, 8):
            rates[shards] = _ingest_rate(_make_service(shards), data,
                                         per_box=False)
        return rates

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    _record("service_throughput_vs_shards", [
        "service ingestion throughput vs shard count "
        f"({BATCHED_BOXES} boxes, {NUM_INSTANCES} instances)",
        *(f"shards={shards:<2d} : {rate:12.0f} boxes/s"
          for shards, rate in sorted(rates.items())),
    ])
    # Sharding splits one vectorised insert into N smaller ones; allow
    # overhead but reject a collapse.
    assert rates[8] > rates[1] / 10.0


def test_estimate_latency_cold_vs_cached(benchmark):
    """The merged-view cache amortises shard merging across estimates."""
    service = _make_service(num_shards=8)
    service.ingest("join", synthetic_boxes(DOMAIN, 2000, seed=4), side="left")
    service.ingest("join", synthetic_boxes(DOMAIN, 2000, seed=5), side="right")
    service.flush()

    start = time.perf_counter()
    service.estimate("join")
    cold = time.perf_counter() - start

    def cached() -> float:
        start = time.perf_counter()
        for _ in range(20):
            service.estimate("join")
        return (time.perf_counter() - start) / 20

    warm = benchmark.pedantic(cached, rounds=1, iterations=1)
    _record("service_estimate_latency", [
        "service estimate latency (8 shards, "
        f"{NUM_INSTANCES} instances, rectangle family)",
        f"cold (merge all shards) : {cold * 1e3:10.3f} ms",
        f"cached merged view      : {warm * 1e3:10.3f} ms",
    ])
    assert service.stats.cache_hits >= 20
    assert warm <= cold  # a cached estimate never costs more than a cold one
