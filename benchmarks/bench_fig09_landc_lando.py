"""Figure 9: relative error vs allocated space, LANDC join LANDO (simulated).

Paper shape: SKETCH improves steadily as it is given more space; EH can be
good with little memory but behaves unpredictably as the grid is refined;
GH mostly needs more space and trails SKETCH slightly.
"""

import math

from repro.experiments.figures import figure9

from benchmarks.conftest import run_figure


def test_figure9_landc_lando(benchmark, figure_scale, record_figure, shape_checks):
    result = run_figure(benchmark, figure9, figure_scale, seed=0)
    record_figure(result)

    sketch = result.column("sketch_error")
    assert all(math.isfinite(value) and value >= 0 for value in sketch)
    if shape_checks:
        # Shape: more space helps SKETCH — the error at the largest budget must
        # not exceed the error at the smallest budget.
        assert sketch[-1] <= sketch[0] + 0.05
