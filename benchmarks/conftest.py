"""Shared infrastructure for the benchmark suite.

Every paper figure has one benchmark module.  A benchmark

* regenerates the figure's data series through
  :mod:`repro.experiments.figures` (timed once via ``benchmark.pedantic``),
* prints the series and appends it to ``benchmarks/results/`` so the run
  leaves a record of the paper-vs-measured comparison,
* asserts the *qualitative shape* the paper reports (the absolute numbers
  depend on the scaled-down defaults; see EXPERIMENTS.md).

Select the experiment scale with ``--figure-scale {tiny,laptop,paper}``
(default: laptop).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.config import get_scale
from repro.experiments.reporting import FigureResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption("--figure-scale", action="store", default="laptop",
                     choices=("tiny", "laptop", "paper"),
                     help="experiment scale used by the figure benchmarks")


@pytest.fixture(scope="session")
def figure_scale(request):
    return get_scale(request.config.getoption("--figure-scale"))


@pytest.fixture(scope="session")
def shape_checks(figure_scale) -> bool:
    """Whether the paper-shape assertions should be enforced.

    The ``tiny`` scale exists purely as a fast smoke test; its datasets are
    far too small for the statistical shape claims, so those assertions are
    only enforced at the ``laptop`` and ``paper`` scales.
    """
    return figure_scale.name != "tiny"


@pytest.fixture(scope="session")
def record_figure():
    """Persist a FigureResult under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result: FigureResult) -> FigureResult:
        text = result.to_text()
        print("\n" + text)
        path = RESULTS_DIR / f"{result.figure_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return result

    return _record


def run_figure(benchmark, generator, scale, seed: int = 0) -> FigureResult:
    """Run a figure generator exactly once under the benchmark timer."""
    return benchmark.pedantic(lambda: generator(scale, seed=seed), rounds=1, iterations=1)
