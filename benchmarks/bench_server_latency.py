"""Server latency benchmark: coalesced vs naive per-request serving.

This is the perf-regression gate of the network serving layer: the same
pipelined estimate workload (16 client connections x 64 range queries) is
driven against

* a **naive** server (``max_batch=1`` — every request becomes its own
  engine call, the way a thin per-request RPC layer would serve it), and
* a **coalesced** server (``max_batch=256`` with a 10 ms window —
  concurrent requests are gathered into batched engine calls),

and the coalesced configuration must deliver **at least 3x** the naive
throughput.  Both servers run with a single engine-executor thread, so the
comparison isolates the serving *policy* (1024 scalar engine calls vs ~4
batched ones) on identical resources.  Per-request p50/p99 latencies come
from the server's own metrics verb (the numbers operators would scrape).

The clients drive the server from one asyncio loop (pipelined writes, one
reader per connection) to keep measurement overhead flat across scenarios.

Besides the human-readable record under ``benchmarks/results/``, the run
writes ``BENCH_server.json`` at the repository root; CI consumes that file
and fails the perf-smoke job when the speedup drops below 3x.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import time

from repro.core.domain import Domain
from repro.server import ServerConfig, ThreadedServer, protocol
from repro.service import EstimationService, synthetic_boxes, synthetic_queries

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_server.json"

DOMAIN = Domain.square(1024, dimension=2)
NUM_INSTANCES = 512
DATA_BOXES = 8000
CONNECTIONS = 16
QUERIES_PER_CONNECTION = 64
MIN_SPEEDUP = 3.0

NAIVE_CONFIG = ServerConfig(max_batch=1, max_delay=0.0, max_queue=8192,
                            executor_workers=1)
COALESCED_CONFIG = ServerConfig(max_batch=256, max_delay=0.010,
                                max_queue=8192, executor_workers=1)


def _make_service() -> EstimationService:
    service = EstimationService(num_shards=4, flush_threshold=None)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=11)
    service.ingest("ranges", synthetic_boxes(DOMAIN, DATA_BOXES, seed=1),
                   side="data")
    service.flush()
    # Warm the merged-view cache so both scenarios measure serving, not the
    # first view build.
    service.estimate("ranges", synthetic_queries(DOMAIN, 1, seed=99))
    return service


def _metric(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"metric {name} missing from exposition")


async def _drive_clients(port: int, request_lines: bytes) -> str:
    """Pipeline the workload over CONNECTIONS connections; returns metrics."""

    async def one_connection() -> None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(request_lines)
        await writer.drain()
        for _ in range(QUERIES_PER_CONNECTION):
            reply = json.loads(await reader.readline())
            assert reply["ok"], reply
        writer.close()
        await writer.wait_closed()

    await asyncio.gather(*(one_connection() for _ in range(CONNECTIONS)))

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(protocol.encode({"op": "metrics"}))
    await writer.drain()
    reply = json.loads(await reader.readline())
    writer.close()
    return reply["text"]


def _drive(config: ServerConfig) -> dict:
    """One scenario: a fresh service/server pair under the fixed workload."""
    service = _make_service()
    queries = synthetic_queries(DOMAIN, QUERIES_PER_CONNECTION, seed=7)
    request_lines = b"".join(
        protocol.encode({"op": "estimate", "name": "ranges", "query": row})
        for row in protocol.boxes_to_rows(queries))

    with ThreadedServer(service, config=config) as handle:
        start = time.perf_counter()
        text = asyncio.run(_drive_clients(handle.port, request_lines))
        elapsed = time.perf_counter() - start

    requests = CONNECTIONS * QUERIES_PER_CONNECTION
    stats = service.stats
    return {
        "requests": requests,
        "seconds": elapsed,
        "throughput_rps": requests / elapsed,
        "p50_ms": _metric(text, 'repro_server_estimate_latency_ms'
                                '{quantile="0.5"}'),
        "p99_ms": _metric(text, 'repro_server_estimate_latency_ms'
                                '{quantile="0.99"}'),
        "engine_calls": stats.batch_estimates,
        "coalesce_factor": (stats.coalesced_queries / stats.batch_estimates
                            if stats.batch_estimates else 0.0),
    }


def _record(name: str, lines: list[str]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def test_coalesced_serving_at_least_3x_naive(benchmark):
    """The acceptance gate: coalesced throughput >= 3x per-request serving."""
    naive = _drive(NAIVE_CONFIG)
    coalesced = benchmark.pedantic(lambda: _drive(COALESCED_CONFIG),
                                   rounds=1, iterations=1)

    speedup = coalesced["throughput_rps"] / naive["throughput_rps"]
    report = {
        "coalesced_vs_naive": {
            "requests": naive["requests"],
            "connections": CONNECTIONS,
            "num_instances": NUM_INSTANCES,
            "naive": naive,
            "coalesced": coalesced,
            "throughput_speedup": speedup,
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")

    def row(name: str, scenario: dict) -> str:
        return (f"{name:10s} {scenario['throughput_rps']:10.0f} rps   "
                f"p50 {scenario['p50_ms']:7.2f} ms   "
                f"p99 {scenario['p99_ms']:7.2f} ms   "
                f"{scenario['engine_calls']:4d} engine calls   "
                f"coalesce x{scenario['coalesce_factor']:.1f}")

    _record("bench_server_latency", [
        f"server latency: {naive['requests']} pipelined estimates over "
        f"{CONNECTIONS} connections",
        row("naive", naive),
        row("coalesced", coalesced),
        f"throughput speedup: {speedup:.1f}x (gate: >= {MIN_SPEEDUP}x)",
        f"report: {REPORT_PATH.name}",
    ])

    assert coalesced["engine_calls"] < naive["engine_calls"]
    assert coalesced["coalesce_factor"] > 2.0
    assert speedup >= MIN_SPEEDUP, (
        f"coalesced serving regressed: {speedup:.1f}x < {MIN_SPEEDUP}x")
