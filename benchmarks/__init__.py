"""Benchmark package: one module per paper figure plus ablations and micro-benchmarks."""
