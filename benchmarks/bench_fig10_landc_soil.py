"""Figure 10: relative error vs allocated space, LANDC join SOIL (simulated).

Paper shape: as for Figure 9 — SKETCH declines steadily with space, EH is
non-monotone, GH catches up only at larger budgets.
"""

import math

from repro.experiments.figures import figure10

from benchmarks.conftest import run_figure


def test_figure10_landc_soil(benchmark, figure_scale, record_figure, shape_checks):
    result = run_figure(benchmark, figure10, figure_scale, seed=0)
    record_figure(result)

    sketch = result.column("sketch_error")
    assert all(math.isfinite(value) and value >= 0 for value in sketch)
    if shape_checks:
        assert sketch[-1] <= sketch[0] + 0.05
