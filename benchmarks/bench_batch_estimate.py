"""Batched-estimation benchmark: scalar loop vs. vectorised batch kernels.

This is the perf-regression gate of the batched estimation engine:

* a 1000-query batch answered through ``EstimationService.estimate_batch``
  must beat the same 1000 queries answered one ``estimate`` call at a time
  by **at least 3x** (the CI perf-smoke job re-checks the recorded JSON),
* batch throughput is additionally swept across shard counts and worker
  fan-outs to record how the process/thread pool behaves.

Besides the human-readable record under ``benchmarks/results/``, the run
writes ``BENCH_batch_estimate.json`` at the repository root; CI consumes
that file and fails the perf-smoke job when the speedup drops below 3x.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core.domain import Domain
from repro.service import EstimationService, synthetic_boxes, synthetic_queries

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_batch_estimate.json"

DOMAIN = Domain.square(1024, dimension=2)
NUM_INSTANCES = 128
DATA_BOXES = 8000
NUM_QUERIES = 1000
MIN_SPEEDUP = 3.0


def _make_service(num_shards: int) -> EstimationService:
    service = EstimationService(num_shards=num_shards, flush_threshold=None)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=11)
    service.ingest("ranges", synthetic_boxes(DOMAIN, DATA_BOXES, seed=1),
                   side="data")
    service.flush()
    service.estimate("ranges", synthetic_queries(DOMAIN, 1, seed=99))  # warm view
    return service


def _record(name: str, lines: list[str]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def test_batch_estimate_at_least_3x_scalar_loop(benchmark):
    """The acceptance criterion: the batch kernel beats the scalar loop >= 3x."""
    service = _make_service(num_shards=4)
    queries = synthetic_queries(DOMAIN, NUM_QUERIES, seed=7)

    def run_batch() -> float:
        start = time.perf_counter()
        results = service.estimate_batch("ranges", queries)
        elapsed = time.perf_counter() - start
        assert len(results) == NUM_QUERIES
        return elapsed

    batch_seconds = benchmark.pedantic(run_batch, rounds=1, iterations=1)

    start = time.perf_counter()
    scalar = [service.estimate("ranges", queries[index])
              for index in range(NUM_QUERIES)]
    scalar_seconds = time.perf_counter() - start

    batch = service.estimate_batch("ranges", queries)
    assert [r.estimate for r in batch] == [r.estimate for r in scalar]

    speedup = scalar_seconds / batch_seconds

    shard_rates: dict[int, float] = {}
    for shards in (1, 2, 4, 8):
        sharded = _make_service(num_shards=shards)
        start = time.perf_counter()
        sharded.estimate_batch("ranges", queries)
        shard_rates[shards] = NUM_QUERIES / (time.perf_counter() - start)

    worker_rates: dict[int, float] = {}
    for workers in (1, 2, 4):
        start = time.perf_counter()
        service.estimate_batch("ranges", queries, workers=workers)
        worker_rates[workers] = NUM_QUERIES / (time.perf_counter() - start)

    report = {
        "domain": list(DOMAIN.requested_sizes),
        "num_instances": NUM_INSTANCES,
        "data_boxes": DATA_BOXES,
        "scalar_vs_batch": {
            "num_queries": NUM_QUERIES,
            "scalar_seconds": scalar_seconds,
            "batch_seconds": batch_seconds,
            "scalar_qps": NUM_QUERIES / scalar_seconds,
            "batch_qps": NUM_QUERIES / batch_seconds,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
        },
        "batch_qps_vs_shards": {str(k): v for k, v in shard_rates.items()},
        "batch_qps_vs_workers": {str(k): v for k, v in worker_rates.items()},
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    _record("batch_estimate", [
        f"batched range estimation ({NUM_QUERIES} queries, "
        f"{NUM_INSTANCES} instances, 4 shards)",
        f"scalar loop : {scalar_seconds:8.3f} s "
        f"({NUM_QUERIES / scalar_seconds:10.0f} q/s)",
        f"batch kernel: {batch_seconds:8.3f} s "
        f"({NUM_QUERIES / batch_seconds:10.0f} q/s)",
        f"speedup     : {speedup:8.1f}x (gate: >= {MIN_SPEEDUP}x)",
        *(f"shards={shards:<2d} : {rate:10.0f} q/s"
          for shards, rate in sorted(shard_rates.items())),
        *(f"workers={workers:<2d}: {rate:10.0f} q/s"
          for workers, rate in sorted(worker_rates.items())),
    ])
    assert speedup >= MIN_SPEEDUP
