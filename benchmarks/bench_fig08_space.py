"""Figure 8: sketch space requirement vs dataset size for a fixed guarantee.

Paper shape: the space stays roughly constant (around 63 K words in the
paper) as the dataset grows, so the summary shrinks as a fraction of the
dataset.
"""

from repro.experiments.figures import figure8

from benchmarks.conftest import run_figure


def test_figure8_space_roughly_constant(benchmark, figure_scale, record_figure):
    result = run_figure(benchmark, figure8, figure_scale, seed=0)
    record_figure(result)

    kwords = result.column("sketch_kwords")
    fractions = result.column("fraction_of_dataset")
    assert max(kwords) <= 2.0 * min(kwords) + 1e-9
    # As the dataset grows, the sketch becomes a smaller fraction of it.
    assert fractions[-1] <= fractions[0]
