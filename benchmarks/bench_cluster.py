"""Cluster scaling benchmark: 1 worker vs an owner plus 3 read replicas.

The cluster's scaling claim is that read replicas multiply estimate
throughput: every replica holds a bit-identical mirror of its owner's
counters (writes fan to the whole owner group), so the router can
round-robin estimates across N processes — N cores answering instead of
one.  This benchmark measures exactly that:

* **baseline** — one worker subprocess behind a router, and
* **scaled** — the same snapshot served by 4 worker subprocesses (the
  owner plus 3 replicas bootstrapped over the wire),

under an identical pipelined estimate workload, and reports the
throughput ratio.  Replies are checked bit-identical across scenarios —
scaling must not change a single answer.

The run writes ``BENCH_cluster.json`` at the repository root; CI's
perf-smoke job (4 vCPUs) fails when the speedup drops below 2.5x.  The
in-test assertion only fires when the machine has at least 4 CPUs —
subprocess workers cannot scale past the physical core count, so on
smaller hosts the file records the measurement without gating.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import tempfile
import time

from repro.client import ServiceClient
from repro.cluster import RouterConfig, ThreadedClusterRouter
from repro.cluster.fleet import LocalFleet
from repro.core.domain import Domain
from repro.server import protocol
from repro.service import EstimationService, synthetic_boxes, synthetic_queries

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_cluster.json"

DOMAIN = Domain.square(1024, dimension=2)
NUM_INSTANCES = 512
DATA_BOXES = 4000
CONNECTIONS = 8
QUERIES_PER_CONNECTION = 48
SCALED_WORKERS = 4
MIN_SPEEDUP = 2.5
MIN_CPUS_TO_GATE = 4


def _make_snapshot(directory: str) -> str:
    service = EstimationService(num_shards=4, flush_threshold=None)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=11)
    service.ingest("ranges", synthetic_boxes(DOMAIN, DATA_BOXES, seed=1),
                   side="data")
    service.flush()
    path = os.path.join(directory, "bench_cluster.sketch")
    service.save(path, format="binary")
    return path


async def _drive_clients(port: int, request_lines: bytes) -> list[float]:
    """Pipeline the workload over CONNECTIONS connections to the router."""
    estimates: list[list[float]] = [[] for _ in range(CONNECTIONS)]

    async def one_connection(index: int) -> None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(request_lines)
        await writer.drain()
        for _ in range(QUERIES_PER_CONNECTION):
            reply = json.loads(await reader.readline())
            assert reply["ok"], reply
            estimates[index].append(reply["estimate"])
        writer.close()
        await writer.wait_closed()

    await asyncio.gather(*(one_connection(i) for i in range(CONNECTIONS)))
    flat = [value for per_connection in estimates for value in per_connection]
    return flat


def _drive(snapshot: str, workers: int) -> dict:
    """One scenario: a fleet of `workers` processes serving one snapshot."""
    queries = synthetic_queries(DOMAIN, QUERIES_PER_CONNECTION, seed=7)
    request_lines = b"".join(
        protocol.encode({"op": "estimate", "name": "ranges", "query": row})
        for row in protocol.boxes_to_rows(queries))

    with LocalFleet(1, snapshot=snapshot) as fleet:
        for _ in range(workers - 1):
            fleet.spawn_extra(snapshot=None)
        owner_address = fleet.addresses()[0]
        with ThreadedClusterRouter([owner_address],
                                   config=RouterConfig(),
                                   start_heartbeat=False) as handle:
            for index, worker in enumerate(fleet.workers[1:], start=1):
                handle.run(handle.router.bootstrap_replica(
                    f"r{index}", worker.host, worker.port, source="w0"))
            # Warm every worker's merged-view cache outside the clock.
            with ServiceClient("127.0.0.1", handle.port) as client:
                for _ in range(workers):
                    client.estimate("ranges",
                                    synthetic_queries(DOMAIN, 1, seed=99))
            start = time.perf_counter()
            estimates = asyncio.run(_drive_clients(handle.port,
                                                   request_lines))
            elapsed = time.perf_counter() - start

    requests = CONNECTIONS * QUERIES_PER_CONNECTION
    return {
        "workers": workers,
        "requests": requests,
        "seconds": elapsed,
        "throughput_rps": requests / elapsed,
        "estimates": estimates,
    }


def _record(name: str, lines: list[str]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def test_replica_fleet_scales_estimate_throughput(benchmark):
    """Acceptance: 4-worker estimate throughput >= 2.5x one worker (CI gate)."""
    cpu_count = os.cpu_count() or 1
    with tempfile.TemporaryDirectory() as directory:
        snapshot = _make_snapshot(directory)
        baseline = _drive(snapshot, workers=1)
        scaled = benchmark.pedantic(
            lambda: _drive(snapshot, workers=SCALED_WORKERS),
            rounds=1, iterations=1)

    # Scaling must be invisible to correctness: every reply bit-identical.
    assert scaled["estimates"] == baseline["estimates"]
    speedup = scaled["throughput_rps"] / baseline["throughput_rps"]
    report = {
        "cluster_scaling": {
            "cpu_count": cpu_count,
            "requests": baseline["requests"],
            "connections": CONNECTIONS,
            "num_instances": NUM_INSTANCES,
            "baseline": {k: v for k, v in baseline.items()
                         if k != "estimates"},
            "scaled": {k: v for k, v in scaled.items() if k != "estimates"},
            "speedup": speedup,
            "gate_enforced_locally": cpu_count >= MIN_CPUS_TO_GATE,
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")

    _record("bench_cluster", [
        f"cluster scaling: {baseline['requests']} pipelined estimates over "
        f"{CONNECTIONS} connections ({cpu_count} CPUs)",
        f"1 worker             {baseline['throughput_rps']:10.0f} rps",
        f"{SCALED_WORKERS} workers (replicas) {scaled['throughput_rps']:10.0f} rps",
        f"speedup: {speedup:.1f}x (gate: >= {MIN_SPEEDUP}x on >= "
        f"{MIN_CPUS_TO_GATE} CPUs; CI enforces unconditionally)",
        f"report: {REPORT_PATH.name}",
    ])

    if cpu_count >= MIN_CPUS_TO_GATE:
        assert speedup >= MIN_SPEEDUP, (
            f"replica scaling regressed: {speedup:.1f}x < {MIN_SPEEDUP}x")
