"""Extension (Section 5.2 / Appendix C): handling of common endpoints.

Shape: on coordinate-snapped data both the endpoint transformation and the
explicit Appendix-C correction track the true join size, while naively
assuming distinct endpoints systematically over-counts.
"""

from repro.experiments.figures import extension_common_endpoints

from benchmarks.conftest import run_figure


def test_common_endpoint_handling(benchmark, figure_scale, record_figure, shape_checks):
    result = run_figure(benchmark, extension_common_endpoints, figure_scale, seed=0)
    record_figure(result)

    rows = {row[0]: row for row in result.rows}
    truth = result.rows[0][1]
    assert set(rows) == {"transform", "explicit", "assume_distinct"}
    # The naive policy over-counts on snapped data (its mean estimate exceeds
    # the truth), while the two sound policies stay closer to it on average.
    assert rows["assume_distinct"][2] > truth
    sound_error = max(rows["transform"][3], rows["explicit"][3])
    assert sound_error <= rows["assume_distinct"][3] + 0.25
