"""Program-executor benchmark: mixed-estimator dispatch vs per-family batches.

This is the perf-regression gate of the compiled-program layer: a hot mixed
workload — four estimator families interleaved, the same request set
arriving round after round (the shape a serving layer sees from optimizer
probes and dashboard queries) — answered through

* the **per-family path**: each round grouped by estimator and answered by
  one batched engine call per family (intra-batch letter-sum sharing, no
  cross-round reuse — the pre-program-layer serving cost), and
* the **mixed path**: each round answered by a single
  ``EstimationService.estimate_multi`` dispatch on the service's caching
  :class:`~repro.core.program.ProgramExecutor`, so letter-sum work is
  shared across queries, estimator families *and* rounds,

and the mixed path must be **at least 2x** faster over the whole workload.
Results are asserted bit-identical between the two paths.

Besides the human-readable record under ``benchmarks/results/``, the run
writes ``BENCH_program.json`` at the repository root; CI consumes that file
and fails the perf-smoke job when the speedup drops below 2x.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.core.atomic import Letter, SketchBank, all_words
from repro.core.domain import Domain
from repro.core.program import ProgramExecutor
from repro.service import EstimationService, synthetic_boxes, synthetic_queries
from repro.service.specs import run_estimate_batch

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_program.json"

DOMAIN = Domain.square(65536, dimension=2)
NUM_INSTANCES = 192
DATA_BOXES = 4000
ROUNDS = 6
RANGE_REQUESTS_PER_ROUND = 512
QUERYLESS_REQUESTS_PER_ROUND = 48  # per query-less family, per round
MIN_SPEEDUP = 2.0

FAMILY_NAMES = ("ranges", "join", "eps", "contain")

LETTER_SUM_INTERVALS = 2048
LETTER_SUM_ROUNDS = 5
LETTER_SUM_MIN_SPEEDUP = 2.0


def _update_report(updates: dict) -> None:
    """Merge new sections into ``BENCH_program.json`` without clobbering.

    The mixed-dispatch gate and the letter-sum gate share the report file;
    whichever runs first must not erase the other's section.
    """
    report: dict = {}
    if REPORT_PATH.exists():
        report = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
    report.update(updates)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n",
                           encoding="utf-8")


def _make_service() -> EstimationService:
    service = EstimationService(num_shards=4, flush_threshold=None)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=11)
    service.register("join", family="rectangle", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=12)
    service.register("eps", family="epsilon", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=13, epsilon=4)
    service.register("contain", family="containment", domain=DOMAIN,
                     num_instances=NUM_INSTANCES, seed=14)
    boxes = synthetic_boxes(DOMAIN, DATA_BOXES, seed=1)
    points = synthetic_boxes(DOMAIN, DATA_BOXES // 4, seed=2, degenerate=True)
    service.ingest("ranges", boxes, side="data")
    service.ingest("join", boxes, side="left")
    service.ingest("join", synthetic_boxes(DOMAIN, DATA_BOXES, seed=3),
                   side="right")
    service.ingest("eps", points, side="left")
    service.ingest("eps", synthetic_boxes(DOMAIN, DATA_BOXES // 4, seed=4,
                                          degenerate=True), side="right")
    service.ingest("contain", boxes, side="outer")
    service.ingest("contain", synthetic_boxes(DOMAIN, DATA_BOXES, seed=5),
                   side="inner")
    service.flush()
    # Warm the merged-view LRU so both paths measure estimation, not the
    # first view build.
    for name in FAMILY_NAMES:
        service.merged_view(name)
    return service


def _round_requests(queries) -> list[tuple[str, object]]:
    """One round of the mixed workload: 4 families interleaved."""
    requests: list[tuple[str, object]] = []
    queryless = 0
    for index in range(len(queries)):
        requests.append(("ranges", queries[index:index + 1]))
        if index % 10 == 0 and queryless < 3 * QUERYLESS_REQUESTS_PER_ROUND:
            for name in ("join", "eps", "contain"):
                requests.append((name, None))
            queryless += 3
    return requests


def _per_family_round(service, requests, executor) -> list:
    """The baseline: one batched engine call per family, no cross-round reuse."""
    grouped: dict[str, list] = {}
    order: dict[str, list[int]] = {}
    for index, (name, query) in enumerate(requests):
        grouped.setdefault(name, []).append(query)
        order.setdefault(name, []).append(index)
    results: list = [None] * len(requests)
    for name, queries in grouped.items():
        batch = run_estimate_batch(service.spec(name),
                                   service.merged_view(name), queries,
                                   executor=executor)
        for position, index in enumerate(order[name]):
            results[index] = batch[position]
    return results


def test_mixed_dispatch_at_least_2x_per_family_path(benchmark):
    """The acceptance gate: mixed-workload dispatch >= 2x per-family batches."""
    service = _make_service()
    queries = synthetic_queries(DOMAIN, RANGE_REQUESTS_PER_ROUND, seed=7)
    requests = _round_requests(queries)
    num_families = len({name for name, _ in requests})
    assert num_families == 4

    baseline_executor = ProgramExecutor(cache_size=0)

    def run_per_family() -> float:
        start = time.perf_counter()
        for _ in range(ROUNDS):
            _per_family_round(service, requests, baseline_executor)
        return time.perf_counter() - start

    def run_mixed() -> float:
        start = time.perf_counter()
        for _ in range(ROUNDS):
            service.estimate_multi(requests)
        return time.perf_counter() - start

    per_family_seconds = run_per_family()
    mixed_seconds = benchmark.pedantic(run_mixed, rounds=1, iterations=1)

    # Bit-identity between the two paths (and with the scalar estimates the
    # property suite pins them to).
    baseline = _per_family_round(service, requests,
                                 ProgramExecutor(cache_size=0))
    mixed = service.estimate_multi(requests)
    assert [r.estimate for r in mixed] == [r.estimate for r in baseline]

    speedup = per_family_seconds / mixed_seconds
    executor_stats = service.program_executor.stats
    total_requests = ROUNDS * len(requests)

    report = {
        "domain": list(DOMAIN.requested_sizes),
        "num_instances": NUM_INSTANCES,
        "mixed_vs_per_family": {
            "families": num_families,
            "rounds": ROUNDS,
            "requests_per_round": len(requests),
            "total_requests": total_requests,
            "per_family_seconds": per_family_seconds,
            "mixed_seconds": mixed_seconds,
            "per_family_qps": total_requests / per_family_seconds,
            "mixed_qps": total_requests / mixed_seconds,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
        },
        "executor": {
            "cache_hits": executor_stats.cache_hits,
            "letter_sums_requested": executor_stats.letter_sums_requested,
            "letter_sums_computed": executor_stats.letter_sums_computed,
            "kernel_calls": executor_stats.kernel_calls,
        },
    }
    _update_report(report)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"program executor: {ROUNDS} rounds x {len(requests)} mixed requests "
        f"({num_families} families, {NUM_INSTANCES} instances)",
        f"per-family path: {per_family_seconds:8.3f} s "
        f"({total_requests / per_family_seconds:10.0f} q/s)",
        f"mixed dispatch : {mixed_seconds:8.3f} s "
        f"({total_requests / mixed_seconds:10.0f} q/s)",
        f"speedup        : {speedup:8.1f}x (gate: >= {MIN_SPEEDUP}x)",
        f"letter sums    : {executor_stats.letter_sums_computed} computed / "
        f"{executor_stats.letter_sums_requested} requested "
        f"({executor_stats.cache_hits} cache hits, "
        f"{executor_stats.kernel_calls} kernel calls)",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / "bench_program_cache.txt").write_text(text + "\n",
                                                         encoding="utf-8")
    assert speedup >= MIN_SPEEDUP


def _reference_interval_sums(bank: SketchBank, dim: int, lows: np.ndarray,
                             highs: np.ndarray) -> np.ndarray:
    """The pre-fusion letter-sum path: per-box scalar covers, fresh signs.

    This reimplements the shape of the old ``_letter_sums`` inner loop —
    one Python-level ``cover()`` walk per box, a freshly allocated sign
    matrix, then one ``reduceat`` — as the baseline the fused kernel must
    beat while staying bit-identical.
    """
    dyadic = bank.domain.dyadic(dim)
    xi = bank.xi_banks[dim]
    ids_list: list[int] = []
    lengths = np.empty(len(lows), dtype=np.int64)
    for index, (lo, hi) in enumerate(zip(lows.tolist(), highs.tolist())):
        cover = dyadic.cover(lo, hi)
        ids_list.extend(cover)
        lengths[index] = len(cover)
    ids = np.asarray(ids_list, dtype=np.int64)
    starts = np.zeros(len(lows), dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    signs = xi.signs(ids)
    return np.add.reduceat(signs, starts, axis=1, dtype=np.float64)


def test_fused_letter_sums_at_least_2x_reference(benchmark):
    """The kernel gate: fused letter sums >= 2x the per-box scalar path."""
    bank = SketchBank(DOMAIN, all_words([Letter.INTERVAL], DOMAIN.dimension),
                      NUM_INSTANCES, seed=17)
    rng = np.random.default_rng(3)
    size = DOMAIN.dyadic(0).size
    lows = rng.integers(0, size - 1, size=LETTER_SUM_INTERVALS)
    highs = lows + rng.integers(1, size // 4, size=LETTER_SUM_INTERVALS)
    highs = np.minimum(highs, size - 1)

    # Warm both paths (sign-table builds, workspace growth, numba JIT when
    # present) so the timed loops compare steady-state kernels.
    fused_warm = bank.letter_sums(0, Letter.INTERVAL, lows, highs)
    reference_warm = _reference_interval_sums(bank, 0, lows, highs)
    assert np.array_equal(fused_warm, reference_warm)

    def run_reference() -> float:
        start = time.perf_counter()
        for _ in range(LETTER_SUM_ROUNDS):
            _reference_interval_sums(bank, 0, lows, highs)
        return time.perf_counter() - start

    def run_fused() -> float:
        start = time.perf_counter()
        for _ in range(LETTER_SUM_ROUNDS):
            bank.letter_sums(0, Letter.INTERVAL, lows, highs)
        return time.perf_counter() - start

    reference_seconds = run_reference()
    fused_seconds = benchmark.pedantic(run_fused, rounds=1, iterations=1)
    speedup = reference_seconds / fused_seconds

    from repro.core import kernels

    _update_report({
        "letter_sum": {
            "intervals": LETTER_SUM_INTERVALS,
            "rounds": LETTER_SUM_ROUNDS,
            "instances": NUM_INSTANCES,
            "reference_seconds": reference_seconds,
            "fused_seconds": fused_seconds,
            "speedup": speedup,
            "min_speedup": LETTER_SUM_MIN_SPEEDUP,
            "numba": kernels.HAVE_NUMBA,
        },
    })

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"letter sums: {LETTER_SUM_ROUNDS} rounds x {LETTER_SUM_INTERVALS} "
        f"intervals ({NUM_INSTANCES} instances, "
        f"numba={'on' if kernels.HAVE_NUMBA else 'off'})",
        f"per-box scalar path: {reference_seconds:8.3f} s",
        f"fused kernel       : {fused_seconds:8.3f} s",
        f"speedup            : {speedup:8.1f}x "
        f"(gate: >= {LETTER_SUM_MIN_SPEEDUP}x)",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / "bench_letter_sums.txt").write_text(text + "\n",
                                                       encoding="utf-8")
    assert speedup >= LETTER_SUM_MIN_SPEEDUP
