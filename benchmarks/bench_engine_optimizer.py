"""Engine benchmark: sketch-driven join ordering quality.

Shape: the plan chosen with sketch-based selectivity estimates costs no
more than the worst enumerated plan and stays close to the best one.
"""

from repro.experiments.figures import engine_optimizer_experiment

from benchmarks.conftest import run_figure


def test_optimizer_plan_quality(benchmark, figure_scale, record_figure):
    result = run_figure(benchmark, engine_optimizer_experiment, figure_scale, seed=0)
    record_figure(result)

    rows = {row[0].rsplit("(", 1)[1].rstrip(")"): row for row in result.rows}
    chosen = rows["chosen"]
    best = rows["best"]
    worst = rows["worst"]
    assert chosen[2] <= worst[2]
    assert chosen[2] <= 4 * best[2] + 1000
    # All orders compute the same result.
    assert chosen[3] == best[3] == worst[3]
