"""Figure 5: relative error vs dataset size, uniform data (Zipf z = 0).

Paper shape: SKETCH and GH perform similarly with errors well below EH;
errors stay roughly flat as the dataset grows.
"""

import math

from repro.experiments.figures import figure5

from benchmarks.conftest import run_figure


def test_figure5_uniform_join_error(benchmark, figure_scale, record_figure, shape_checks):
    result = run_figure(benchmark, figure5, figure_scale, seed=0)
    record_figure(result)

    sketch = result.column("sketch_error")
    eh = result.column("eh_error")
    gh = result.column("gh_error")

    assert all(math.isfinite(value) for value in sketch)
    assert all(value >= 0 for value in sketch)
    if shape_checks:
        # Shape: the SKETCH error curve is roughly flat in the dataset size
        # (no systematic blow-up as the input grows).
        assert max(sketch) <= 5 * max(min(sketch), 1e-3) + 0.5
        # Shape: for uniform data the grid techniques' best competitor (GH) and
        # SKETCH are both clearly better than EH on average.
        def mean(xs):
            return sum(xs) / len(xs)
        assert mean(gh) <= mean(eh)
        assert mean(sketch) <= 2.0 * mean(eh) + 0.05
