"""Micro-benchmarks of the core operations (timed with pytest-benchmark).

These are conventional throughput benchmarks: sketch maintenance cost per
object, estimation latency, exact-join algorithms and the xi-family
generator.  They complement the figure benchmarks (which regenerate the
paper's plots) by tracking the constants of the implementation.
"""

import numpy as np
import pytest

from repro.core.atomic import Letter, SketchBank, all_words
from repro.core.domain import Domain
from repro.core.hashing import FourWiseFamilyBank
from repro.core.join_rect import RectangleJoinEstimator
from repro.data import synthetic
from repro.exact.rectangle_join import brute_force_join_count, plane_sweep_join_count


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(5)
    domain = Domain.square(4096, dimension=2).with_max_level(6)
    left = synthetic.generate_rectangles(2000, Domain.square(4096, 2), rng=rng)
    right = synthetic.generate_rectangles(2000, Domain.square(4096, 2), rng=rng)
    return domain, left, right


def test_bench_xi_sign_generation(benchmark):
    bank = FourWiseFamilyBank(256, 8191, seed=1)
    ids = np.arange(8191)
    benchmark(lambda: bank.signs(ids))


def test_bench_sketch_bank_insert(benchmark, workload):
    domain, left, _ = workload
    words = all_words([Letter.INTERVAL, Letter.ENDPOINTS], 2)

    def build():
        bank = SketchBank(domain, words, num_instances=128, seed=3)
        bank.insert(left)
        return bank

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_bench_streaming_update(benchmark, workload):
    domain, left, right = workload
    estimator = RectangleJoinEstimator(domain, num_instances=128, seed=3)
    estimator.insert_left(left)
    estimator.insert_right(right)
    single = left[:1]

    def update():
        estimator.insert_left(single)
        estimator.delete_left(single)

    benchmark(update)


def test_bench_estimate_latency(benchmark, workload):
    domain, left, right = workload
    estimator = RectangleJoinEstimator(domain, num_instances=256, seed=3)
    estimator.insert_left(left)
    estimator.insert_right(right)
    benchmark(lambda: estimator.estimate().estimate)


def test_bench_plane_sweep_join(benchmark, workload):
    _, left, right = workload
    result = benchmark.pedantic(lambda: plane_sweep_join_count(left, right),
                                rounds=3, iterations=1)
    assert result == brute_force_join_count(left, right)


def test_bench_brute_force_join(benchmark, workload):
    _, left, right = workload
    benchmark.pedantic(lambda: brute_force_join_count(left, right), rounds=3, iterations=1)
