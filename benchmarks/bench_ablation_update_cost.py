"""Ablation: update cost of dyadic vs standard (maxLevel = 0) sketches.

Shape: the standard sketch's per-update work grows linearly with the object
extent (hence with the domain size for sqrt(domain)-sized objects), the
dyadic sketch's only logarithmically.
"""

from repro.experiments.figures import ablation_update_cost

from benchmarks.conftest import run_figure


def test_update_cost_ablation(benchmark, figure_scale, record_figure):
    result = run_figure(benchmark, ablation_update_cost, figure_scale, seed=0)
    record_figure(result)

    dyadic_ids = result.column("dyadic_ids_per_update")
    standard_ids = result.column("standard_ids_per_update")
    domains = result.column("domain_size")

    # The standard sketch's cover size tracks the object extent (~ sqrt(domain)
    # here); the dyadic cover grows only logarithmically.  For small domains the
    # standard sketch can be the cheaper one — that is exactly the Section 6.5
    # trade-off — so the assertion is about *growth*, not absolute size.
    standard_growth = standard_ids[-1] / standard_ids[0]
    dyadic_growth = dyadic_ids[-1] / max(dyadic_ids[0], 1e-9)
    domain_growth = domains[-1] / domains[0]
    assert standard_growth > 0.25 * domain_growth ** 0.5   # grows with the extent
    assert dyadic_growth < 3.0                              # stays logarithmic
    assert standard_growth > 1.5 * dyadic_growth            # clearly faster growth
