"""Ablation (Section 6.5): the effect of the maximum dyadic level.

Shape: the adaptively chosen maxLevel minimises the self-join size, and its
estimation error is at or near the best of the swept levels; the full
dyadic sketch (maxLevel = domain height) pays for coarse levels it never
needs on short-interval data.
"""

from repro.experiments.figures import ablation_maxlevel

from benchmarks.conftest import run_figure


def test_maxlevel_ablation(benchmark, figure_scale, record_figure, shape_checks):
    result = run_figure(benchmark, ablation_maxlevel, figure_scale, seed=0)
    record_figure(result)

    rows = {row[0]: row for row in result.rows}
    adaptive_rows = [row for row in result.rows if row[3]]
    assert len(adaptive_rows) == 1
    adaptive = adaptive_rows[0]
    # The adaptive level has the smallest self-join size of the sweep.
    assert adaptive[1] == min(row[1] for row in result.rows)
    # Its error is within a small factor of the best observed error.
    best_error = min(row[2] for row in result.rows)
    assert adaptive[2] <= 2.5 * best_error + 0.05
    # The full dyadic sketch (largest level) has a larger self-join size.
    full_level = max(rows)
    assert rows[full_level][1] > adaptive[1]
