"""Declarative perf-gate checker: ``gates.json`` instead of inline CI scripts.

Every perf-smoke benchmark writes a ``BENCH_<name>.json`` report at the
repository root; ``gates.json`` declares, per gate, which report to read
and which dotted metric paths must clear which floors.  CI then runs::

    python benchmarks/check_gates.py --run wal

per matrix entry — ``--run`` executes the benchmark first (``pytest
<benchmark file> -q``), then enforces the declared checks — keeping the
workflow file free of logic and the thresholds reviewable in one place.

Exit status is non-zero as soon as any check fails; every checked metric
is printed either way so the CI log doubles as a perf record.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

GATES_PATH = pathlib.Path(__file__).parent / "gates.json"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def load_gates() -> dict:
    with open(GATES_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def resolve_metric(report: dict, dotted: str):
    """Walk a dotted path (``recovery.speedup``) through a report tree."""
    node = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            sys.exit(f"report has no metric {dotted!r} (missing {part!r})")
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        sys.exit(f"metric {dotted!r} is not a number: {node!r}")
    return node


def run_benchmark(gate_name: str, gate: dict) -> None:
    command = [sys.executable, "-m", "pytest", gate["benchmark"], "-q"]
    print(f"[{gate_name}] $ {' '.join(command)}", flush=True)
    result = subprocess.run(command, cwd=REPO_ROOT)
    if result.returncode != 0:
        sys.exit(f"benchmark for gate {gate_name!r} failed "
                 f"(exit {result.returncode})")


def check_gate(gate_name: str, gate: dict) -> list[str]:
    """Enforce one gate's checks; returns failure messages (empty = pass)."""
    report_path = REPO_ROOT / gate["report"]
    if not report_path.exists():
        return [f"[{gate_name}] report {gate['report']} not found — "
                f"did the benchmark run?"]
    with open(report_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    failures = []
    print(f"[{gate_name}] {gate['title']}")
    for check in gate["checks"]:
        value = resolve_metric(report, check["metric"])
        floor = check["min"]
        ok = value >= floor
        print(f"  {'ok  ' if ok else 'FAIL'} {check['label']}: "
              f"{value:g} (gate >= {floor:g})")
        if not ok:
            failures.append(f"[{gate_name}] {check['failure']}: "
                            f"{check['metric']} = {value:g} < {floor:g}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run and/or enforce the declarative perf gates")
    parser.add_argument("gates", nargs="*",
                        help="gate names from gates.json (default: all)")
    parser.add_argument("--run", action="store_true",
                        help="run each gate's benchmark before checking")
    parser.add_argument("--list", action="store_true",
                        help="list the known gates and exit")
    args = parser.parse_args(argv)

    all_gates = load_gates()
    if args.list:
        for name, gate in all_gates.items():
            print(f"{name:10s} {gate['title']}")
        return 0

    names = args.gates or list(all_gates)
    unknown = [name for name in names if name not in all_gates]
    if unknown:
        parser.error(f"unknown gate(s) {unknown}; "
                     f"known: {sorted(all_gates)}")

    failures: list[str] = []
    for name in names:
        gate = all_gates[name]
        if args.run:
            run_benchmark(name, gate)
        failures.extend(check_gate(name, gate))

    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
